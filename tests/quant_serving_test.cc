// The int8 tier's MILR story, end to end: an int8-served model takes a
// live fault, online MILR recovery repairs the fp32 master, and the
// quantized serving panels are invalidated and rebuilt FROM the recovered
// master — proven by bit-for-bit agreement between served outputs and a
// freshly quantized copy of the recovered model. Also pins the ServingHost
// co-hosting of all three kernel tiers on one worker pool.
#include <atomic>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "memory/fault_injector.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/model.h"
#include "runtime/engine.h"
#include "runtime/serving_host.h"
#include "support/prng.h"

namespace milr::runtime {
namespace {

/// Dense-only topology: every parameterized layer is either MILR-solvable
/// dense or bias, and layer 0 (the corruption target) is a DenseLayer
/// whose int8 cache the test observes directly.
nn::Model DenseModel() {
  nn::Model model(Shape{32});
  model.AddDense(48).AddBias().AddReLU();
  model.AddDense(32).AddBias().AddReLU();
  model.AddDense(10).AddBias();
  nn::InitHeUniform(model, /*seed=*/7);
  return model;
}

std::vector<Tensor> Probes(const nn::Model& model, std::size_t count) {
  Prng prng(3);
  std::vector<Tensor> probes;
  for (std::size_t i = 0; i < count; ++i) {
    probes.push_back(RandomTensor(model.input_shape(), prng));
  }
  return probes;
}

TEST(QuantServingTest, MilrRecoveryRebuildsInt8PanelsFromRecoveredMaster) {
  nn::Model model = DenseModel();
  const auto probes = Probes(model, 4);

  EngineConfig config;
  config.scrubber_enabled = false;  // scrub synchronously, deterministic
  config.worker_threads = 2;
  config.kernel = nn::KernelConfig::kInt8;
  InferenceEngine engine(model, config);
  engine.Start();

  const auto* dense = dynamic_cast<const nn::DenseLayer*>(&model.layer(0));
  ASSERT_NE(dense, nullptr);
  // Engine construction applied the tier and warmed the quantized cache.
  ASSERT_TRUE(dense->int8_weights_valid());

  std::vector<Tensor> clean;
  for (const auto& probe : probes) clean.push_back(engine.Predict(probe));

  // Live fault into the dense layer's weights. The injection goes through
  // the mutable Params() span, which must invalidate the int8 replica.
  Prng prng(17);
  const auto injection = engine.InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, 0, prng);
  });
  ASSERT_GT(injection.corrupted_weights, 0u);
  EXPECT_FALSE(dense->int8_weights_valid());

  // Serving from the corrupted master requantizes ONCE (from the corrupt
  // weights — the replica is a faithful cache, not a mask) and the
  // outputs move.
  const Tensor corrupted = engine.Predict(probes[0]);
  EXPECT_TRUE(dense->int8_weights_valid());
  bool moved = false;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i] != clean[0][i]) moved = true;
  }
  EXPECT_TRUE(moved) << "whole-layer corruption did not change outputs";

  // Online MILR recovery: detect + quarantine + repair the fp32 master.
  const auto report = engine.ScrubNow();
  ASSERT_GE(report.flagged_layers, 1u);
  ASSERT_GE(report.recovered_layers, 1u);
  ASSERT_TRUE(report.recovery_ok);
  // Recovery wrote the repaired weights through Params(): the quantized
  // panels from the corrupted epoch must be gone.
  EXPECT_FALSE(dense->int8_weights_valid());

  std::vector<Tensor> served;
  for (const auto& probe : probes) served.push_back(engine.Predict(probe));
  EXPECT_TRUE(dense->int8_weights_valid());

  // The proof: a fresh model restored to the RECOVERED master and freshly
  // quantized must reproduce the served outputs bit-for-bit. (The int8
  // tier is deterministic across dispatch/threading, so bit-equality is
  // the correct assertion — it can only hold if the served panels were
  // rebuilt from exactly the recovered weights.)
  std::vector<std::vector<float>> recovered;
  engine.WithModelExclusive(
      [&](nn::Model& live) { recovered = live.SnapshotParams(); });
  nn::Model fresh = DenseModel();
  fresh.RestoreParams(recovered);
  fresh.set_kernel_config(nn::KernelConfig::kInt8);
  for (std::size_t s = 0; s < probes.size(); ++s) {
    const Tensor want = fresh.Predict(probes[s]);
    ASSERT_EQ(want.size(), served[s].size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(served[s][i], want[i]) << "probe " << s << " output " << i;
    }
  }

  // And the recovered master really is repaired: int8 serving agrees with
  // the clean epoch again (quantization tolerance, not bit-equality —
  // MILR recovery leaves float-rounding residue in the master).
  for (std::size_t i = 0; i < served[0].size(); ++i) {
    EXPECT_NEAR(served[0][i], clean[0][i], 5e-2f);
  }
  engine.Stop();
}

TEST(QuantServingTest, HostCoHostsAllThreeKernelTiers) {
  // One shared pool serving fp32-exact, fp32-fast and int8 models at
  // once: the per-model kernel plumbing the ISSUE names. Each tier's
  // outputs are checked against its own oracle.
  nn::Model exact_model = DenseModel();
  nn::Model fast_model = DenseModel();
  nn::Model int8_model = DenseModel();
  const auto probes = Probes(exact_model, 6);

  // Oracles before serving starts (golden state, default exact tier).
  std::vector<Tensor> exact_want;
  for (const auto& probe : probes) {
    exact_want.push_back(exact_model.Predict(probe));
  }

  ServingHostConfig host_config;
  host_config.worker_threads = 3;
  host_config.scrub_period = std::chrono::milliseconds(10);
  ServingHost host(host_config);
  ModelRuntimeConfig exact_cfg, fast_cfg, int8_cfg;
  exact_cfg.kernel = nn::KernelConfig::kExact;
  fast_cfg.kernel = nn::KernelConfig::kFast;
  int8_cfg.kernel = nn::KernelConfig::kInt8;
  auto exact_handle = host.AddModel(exact_model, exact_cfg, "exact");
  auto fast_handle = host.AddModel(fast_model, fast_cfg, "fast");
  auto int8_handle = host.AddModel(int8_model, int8_cfg, "int8");
  host.Start();

  // int8 oracle: an identical, freshly quantized standalone model.
  nn::Model int8_oracle = DenseModel();
  int8_oracle.set_kernel_config(nn::KernelConfig::kInt8);

  for (std::size_t s = 0; s < probes.size(); ++s) {
    const Tensor exact_got = exact_handle->Predict(probes[s]);
    const Tensor fast_got = fast_handle->Predict(probes[s]);
    const Tensor int8_got = int8_handle->Predict(probes[s]);
    const Tensor int8_want = int8_oracle.Predict(probes[s]);
    for (std::size_t i = 0; i < exact_want[s].size(); ++i) {
      EXPECT_EQ(exact_got[i], exact_want[s][i]) << "exact s=" << s;
      EXPECT_NEAR(fast_got[i], exact_want[s][i], 1e-4f) << "fast s=" << s;
      EXPECT_EQ(int8_got[i], int8_want[i]) << "int8 s=" << s;
      EXPECT_NEAR(int8_got[i], exact_want[s][i], 5e-2f) << "int8 s=" << s;
    }
  }
  host.Stop();
}

/// Conv-led topology sized for FULL MILR recoverability of the conv
/// layer: kValid 3x3 over 8x8x2 gives G² = 36 ≥ F²Z = 18, so parameter
/// solving can reconstruct every filter from golden patches. Layer 0 is
/// the Conv2DLayer whose packed int8 filter panels the test observes.
nn::Model ConvModel() {
  nn::Model model(Shape{8, 8, 2});
  model.AddConv(3, 4, nn::Padding::kValid).AddBias().AddReLU();
  model.AddFlatten();
  model.AddDense(10).AddBias();
  nn::InitHeUniform(model, /*seed=*/19);
  return model;
}

TEST(QuantServingTest, MilrRecoveryRebuildsConvInt8PanelsFromMaster) {
  // The dense recovery story, replayed against the conv tier: a live
  // fault lands in the conv FILTERS, MILR repairs the fp32 master, and
  // the filter-stationary int8 panels must be rebuilt from exactly the
  // recovered filters (bit-equality against a freshly quantized copy).
  nn::Model model = ConvModel();
  const auto probes = Probes(model, 4);

  EngineConfig config;
  config.scrubber_enabled = false;  // scrub synchronously, deterministic
  config.worker_threads = 2;
  config.kernel = nn::KernelConfig::kInt8;
  InferenceEngine engine(model, config);
  engine.Start();

  const auto* conv = dynamic_cast<const nn::Conv2DLayer*>(&model.layer(0));
  ASSERT_NE(conv, nullptr);
  // Engine construction applied the tier and warmed the packed panels.
  ASSERT_TRUE(conv->int8_filters_valid());

  std::vector<Tensor> clean;
  for (const auto& probe : probes) clean.push_back(engine.Predict(probe));

  // Live fault into the conv filters through the mutable Params() span —
  // which must invalidate the quantized filter panels.
  Prng prng(17);
  const auto injection = engine.InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, 0, prng);
  });
  ASSERT_GT(injection.corrupted_weights, 0u);
  EXPECT_FALSE(conv->int8_filters_valid());

  // Serving from the corrupted master requantizes ONCE (the replica is a
  // faithful cache of the master, not a mask) and the outputs move.
  const Tensor corrupted = engine.Predict(probes[0]);
  EXPECT_TRUE(conv->int8_filters_valid());
  bool moved = false;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i] != clean[0][i]) moved = true;
  }
  EXPECT_TRUE(moved) << "whole-layer corruption did not change outputs";

  // Online MILR recovery repairs the fp32 filters; the panels quantized
  // from the corrupted epoch must be gone.
  const auto report = engine.ScrubNow();
  ASSERT_GE(report.flagged_layers, 1u);
  ASSERT_GE(report.recovered_layers, 1u);
  ASSERT_TRUE(report.recovery_ok);
  EXPECT_FALSE(conv->int8_filters_valid());

  std::vector<Tensor> served;
  for (const auto& probe : probes) served.push_back(engine.Predict(probe));
  EXPECT_TRUE(conv->int8_filters_valid());

  // Bit-for-bit proof that the served panels came from the RECOVERED
  // master: a fresh model restored to it and freshly quantized must
  // reproduce the served outputs exactly (the int8 tier is deterministic
  // across dispatch, threading, and row blocking).
  std::vector<std::vector<float>> recovered;
  engine.WithModelExclusive(
      [&](nn::Model& live) { recovered = live.SnapshotParams(); });
  nn::Model fresh = ConvModel();
  fresh.RestoreParams(recovered);
  fresh.set_kernel_config(nn::KernelConfig::kInt8);
  for (std::size_t s = 0; s < probes.size(); ++s) {
    const Tensor want = fresh.Predict(probes[s]);
    ASSERT_EQ(want.size(), served[s].size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(served[s][i], want[i]) << "probe " << s << " output " << i;
    }
  }

  // And recovery really repaired the filters: int8 serving agrees with
  // the clean epoch again to quantization tolerance.
  for (std::size_t i = 0; i < served[0].size(); ++i) {
    EXPECT_NEAR(served[0][i], clean[0][i], 5e-2f);
  }
  engine.Stop();
}

TEST(QuantServingTest, HostCoHostsConvModelsAcrossAllThreeTiers) {
  // Conv twin of the dense co-hosting test: one shared pool serving the
  // same conv net at exact, fast and int8, each tier checked against its
  // own oracle — the int8 tier against a freshly quantized standalone
  // model, bit-for-bit.
  nn::Model exact_model = ConvModel();
  nn::Model fast_model = ConvModel();
  nn::Model int8_model = ConvModel();
  const auto probes = Probes(exact_model, 6);

  std::vector<Tensor> exact_want;
  for (const auto& probe : probes) {
    exact_want.push_back(exact_model.Predict(probe));
  }

  ServingHostConfig host_config;
  host_config.worker_threads = 3;
  host_config.scrub_period = std::chrono::milliseconds(10);
  ServingHost host(host_config);
  ModelRuntimeConfig exact_cfg, fast_cfg, int8_cfg;
  exact_cfg.kernel = nn::KernelConfig::kExact;
  fast_cfg.kernel = nn::KernelConfig::kFast;
  int8_cfg.kernel = nn::KernelConfig::kInt8;
  auto exact_handle = host.AddModel(exact_model, exact_cfg, "conv_exact");
  auto fast_handle = host.AddModel(fast_model, fast_cfg, "conv_fast");
  auto int8_handle = host.AddModel(int8_model, int8_cfg, "conv_int8");
  host.Start();

  nn::Model int8_oracle = ConvModel();
  int8_oracle.set_kernel_config(nn::KernelConfig::kInt8);

  for (std::size_t s = 0; s < probes.size(); ++s) {
    const Tensor exact_got = exact_handle->Predict(probes[s]);
    const Tensor fast_got = fast_handle->Predict(probes[s]);
    const Tensor int8_got = int8_handle->Predict(probes[s]);
    const Tensor int8_want = int8_oracle.Predict(probes[s]);
    for (std::size_t i = 0; i < exact_want[s].size(); ++i) {
      EXPECT_EQ(exact_got[i], exact_want[s][i]) << "exact s=" << s;
      EXPECT_NEAR(fast_got[i], exact_want[s][i], 1e-4f) << "fast s=" << s;
      EXPECT_EQ(int8_got[i], int8_want[i]) << "int8 s=" << s;
      EXPECT_NEAR(int8_got[i], exact_want[s][i], 5e-2f) << "int8 s=" << s;
    }
  }
  host.Stop();
}

}  // namespace
}  // namespace milr::runtime
