#include <gtest/gtest.h>

#include "apps/networks.h"
#include "milr/plan.h"
#include "nn/model.h"

namespace milr::core {
namespace {

TEST(PlanTest, PoolingForcesCheckpoint) {
  nn::Model model(Shape{8, 8, 2});
  model.AddMaxPool(2);
  const auto plan = BuildPlan(model, {});
  EXPECT_TRUE(plan.layers[0].input_checkpoint);
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kBlocked);
  EXPECT_EQ(plan.layers[0].planned_bytes, 8u * 8u * 2u * 4u);
  ASSERT_EQ(plan.checkpoint_indices.size(), 1u);
  EXPECT_EQ(plan.checkpoint_indices[0], 0u);
}

TEST(PlanTest, WideDenseIsExactlyInvertible) {
  nn::Model model(Shape{4});
  model.AddDense(9);  // P ≥ N
  const auto plan = BuildPlan(model, {});
  EXPECT_EQ(plan.layers[0].solve, SolveMode::kDense);
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kDenseExact);
  EXPECT_EQ(plan.layers[0].dummy_count, 0u);
  // Solving still needs N−1 dummy rows, each storing P outputs.
  EXPECT_EQ(plan.layers[0].solve_dummy_rows, 3u);
  EXPECT_EQ(plan.layers[0].planned_bytes, 3u * 9u * 4u);
}

TEST(PlanTest, NarrowDenseGetsDummyColumns) {
  nn::Model model(Shape{10});
  model.AddDense(4);  // P < N → α = 6
  const auto plan = BuildPlan(model, {});
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kDenseAugmented);
  EXPECT_EQ(plan.layers[0].dummy_count, 6u);
  EXPECT_FALSE(plan.layers[0].input_checkpoint);
}

TEST(PlanTest, NarrowDenseWithoutAugmentationCheckpoints) {
  nn::Model model(Shape{10});
  model.AddDense(4);
  MilrConfig config;
  config.allow_dummy_augmentation = false;
  const auto plan = BuildPlan(model, config);
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kBlocked);
  EXPECT_TRUE(plan.layers[0].input_checkpoint);
}

TEST(PlanTest, ConvInvertibleWhenFiltersOutnumberPatch) {
  nn::Model model(Shape{10, 10, 1});
  model.AddConv(3, 16, nn::Padding::kValid);  // Y=16 ≥ F²Z=9
  const auto plan = BuildPlan(model, {});
  EXPECT_EQ(plan.layers[0].solve, SolveMode::kConvFull);  // G²=64 ≥ 9
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kConvExact);
}

TEST(PlanTest, ConvPartialWhenOutputTooSmall) {
  nn::Model model(Shape{6, 6, 32});
  model.AddConv(3, 64, nn::Padding::kValid);  // G²=16 < F²Z=288
  const auto plan = BuildPlan(model, {});
  EXPECT_EQ(plan.layers[0].solve, SolveMode::kConvPartial);
  EXPECT_GT(plan.layers[0].planned_bytes, 0u);  // CRC tables
}

TEST(PlanTest, ConvBackwardPicksCheaperOption) {
  // Y=4 < F²Z=9, dummy cost α·G² = 5·36·4B = 720B < checkpoint 8·8·1·4B =
  // 256B? No — checkpoint is cheaper here, so expect a checkpoint.
  nn::Model model(Shape{8, 8, 1});
  model.AddConv(3, 4, nn::Padding::kValid);
  const auto plan = BuildPlan(model, {});
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kBlocked);
  EXPECT_TRUE(plan.layers[0].input_checkpoint);
}

TEST(PlanTest, ConvBackwardPrefersDummiesWhenCheaper) {
  // Z large relative to filter growth: Y=60 < F²Z=64, α=4 dummies cost
  // 4·G²·4B = 4·36·4 = 576B < checkpoint 8·8·16·4 = 4096B.
  nn::Model model(Shape{8, 8, 16});
  model.AddConv(2, 60, nn::Padding::kValid);  // G = 7 → G²=49; α=4
  const auto plan = BuildPlan(model, {});
  EXPECT_EQ(plan.layers[0].backward, BackwardMode::kConvAugmented);
  EXPECT_EQ(plan.layers[0].dummy_count, 4u);
}

TEST(PlanTest, MnistNetworkPlanMatchesPaperStructure) {
  const nn::Model model = apps::BuildMnistNetwork();
  const auto plan = BuildPlan(model, {});
  // Layers: 0 conv, 1 bias, 2 relu, 3 conv, 4 bias, 5 relu, 6 pool,
  //         7 conv, 8 bias, 9 relu, 10 flatten, 11 dense, 12 bias,
  //         13 relu, 14 dense, 15 bias.
  EXPECT_EQ(plan.layers[0].solve, SolveMode::kConvFull);   // G²=676 ≥ 9
  EXPECT_EQ(plan.layers[3].solve, SolveMode::kConvFull);   // G²=576 ≥ 288
  EXPECT_EQ(plan.layers[7].solve, SolveMode::kConvPartial); // G²=100 < 288
  EXPECT_EQ(plan.layers[11].solve, SolveMode::kDense);
  EXPECT_EQ(plan.layers[14].solve, SolveMode::kDense);
  // Pool forces a checkpoint.
  EXPECT_TRUE(plan.layers[6].input_checkpoint);
  // Dense layers (6400→256 and 256→10, both narrow): the default config's
  // checkpoint slack turns their backward into input checkpoints — an
  // N-float checkpoint costs a few % more than the α-float dummy outputs
  // but avoids an O(N³) solve through possibly-corrupted weights.
  EXPECT_EQ(plan.layers[11].backward, BackwardMode::kBlocked);
  EXPECT_TRUE(plan.layers[11].input_checkpoint);
  EXPECT_EQ(plan.layers[14].backward, BackwardMode::kBlocked);
}

TEST(PlanTest, PaperStrictCostComparisonUsesDummyColumns) {
  // With zero slack the paper's pure-storage comparison picks the dummy
  // parameter columns (α = N − P < N).
  const nn::Model model = apps::BuildMnistNetwork();
  MilrConfig config;
  config.checkpoint_cost_slack = 0.0f;
  const auto plan = BuildPlan(model, config);
  EXPECT_EQ(plan.layers[11].backward, BackwardMode::kDenseAugmented);
  EXPECT_EQ(plan.layers[11].dummy_count, 6400u - 256u);
  EXPECT_EQ(plan.layers[14].backward, BackwardMode::kDenseAugmented);
}

TEST(PlanTest, CifarSmallPartialConvsMatchTableVI) {
  const nn::Model model = apps::BuildCifarSmallNetwork();
  const auto plan = BuildPlan(model, {});
  std::vector<SolveMode> conv_modes;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    if (model.layer(i).kind() == nn::LayerKind::kConv2D) {
      conv_modes.push_back(plan.layers[i].solve);
    }
  }
  ASSERT_EQ(conv_modes.size(), 7u);
  // Section IV-B criterion (G² ≥ F²Z): the two 32×32-output convs are fully
  // solvable (G²=1024 ≥ 27 and ≥ 288); partial recoverability starts at the
  // 16×16 stage (256 < 288). Note: the paper's Table VI conservatively
  // marks every conv after the first N/A*; our planner follows the paper's
  // *stated* criterion, which recovers strictly more (see EXPERIMENTS.md).
  EXPECT_EQ(conv_modes[0], SolveMode::kConvFull);
  EXPECT_EQ(conv_modes[1], SolveMode::kConvFull);
  for (std::size_t i = 2; i < conv_modes.size(); ++i) {
    EXPECT_EQ(conv_modes[i], SolveMode::kConvPartial) << "conv " << i;
  }
}

TEST(PlanTest, CifarLargeAllConvsPartial) {
  // Table VIII: every conv row is N/A* (5×5 filters, F²Z ≥ 1600 > G²).
  const nn::Model model = apps::BuildCifarLargeNetwork();
  const auto plan = BuildPlan(model, {});
  int full = 0, partial = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    if (model.layer(i).kind() != nn::LayerKind::kConv2D) continue;
    if (plan.layers[i].solve == SolveMode::kConvPartial) {
      ++partial;
    } else {
      ++full;
    }
  }
  EXPECT_EQ(partial, 5);
  EXPECT_EQ(full, 1);  // the first conv (32×32 out, F²Z=75 < 1024) is full
}

TEST(PlanTest, PlanToStringMentionsEveryLayer) {
  const nn::Model model = apps::BuildMnistNetwork();
  const auto plan = BuildPlan(model, {});
  const std::string text = PlanToString(model, plan);
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    EXPECT_NE(text.find(model.layer(i).name()), std::string::npos);
  }
}

}  // namespace
}  // namespace milr::core
