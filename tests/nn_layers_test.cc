#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/layer.h"
#include "nn/pool.h"
#include "support/prng.h"

namespace milr::nn {
namespace {

Tensor RandomT(Shape shape, std::uint64_t seed) {
  Prng prng(seed);
  return RandomTensor(std::move(shape), prng);
}

// ---------------------------------------------------------------- ReLU

TEST(ReLUTest, ClampsNegatives) {
  ReLULayer relu;
  const Tensor x(Shape{4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  const Tensor y = relu.Forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLULayer relu;
  const Tensor x(Shape{3}, {-1.0f, 1.0f, 2.0f});
  const Tensor y = relu.Forward(x);
  const Tensor dy(Shape{3}, {5.0f, 6.0f, 7.0f});
  const Tensor dx = relu.Backward(x, y, dy, {});
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 6.0f);
  EXPECT_EQ(dx[2], 7.0f);
}

// -------------------------------------------------------------- Flatten

TEST(FlattenTest, ForwardReshapesBackwardRestores) {
  FlattenLayer flatten;
  const Tensor x = RandomT(Shape{2, 3, 4}, 1);
  const Tensor y = flatten.Forward(x);
  EXPECT_EQ(y.shape(), Shape({24}));
  const Tensor dx = flatten.Backward(x, y, y, {});
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(MaxAbsDiff(dx, x), 0.0f);
}

// ----------------------------------------------------------------- Bias

TEST(BiasTest, AddsAlongLastAxisRank1) {
  BiasLayer bias(3);
  bias.bias() = Tensor(Shape{3}, {1.0f, 2.0f, 3.0f});
  const Tensor x(Shape{3}, {10.0f, 20.0f, 30.0f});
  const Tensor y = bias.Forward(x);
  EXPECT_EQ(y[0], 11.0f);
  EXPECT_EQ(y[1], 22.0f);
  EXPECT_EQ(y[2], 33.0f);
}

TEST(BiasTest, AddsPerChannelRank3) {
  BiasLayer bias(2);
  bias.bias() = Tensor(Shape{2}, {0.5f, -0.5f});
  const Tensor x = Tensor::Zeros(Shape{2, 2, 2});
  const Tensor y = bias.Forward(x);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(y.at(i, j, 0), 0.5f);
      EXPECT_EQ(y.at(i, j, 1), -0.5f);
    }
  }
}

TEST(BiasTest, BackwardSumsPerChannel) {
  BiasLayer bias(2);
  const Tensor x = Tensor::Zeros(Shape{2, 2, 2});
  const Tensor dy = Tensor::Full(Shape{2, 2, 2}, 1.0f);
  std::vector<float> dparams(2, 0.0f);
  bias.Backward(x, dy, dy, dparams);
  EXPECT_EQ(dparams[0], 4.0f);
  EXPECT_EQ(dparams[1], 4.0f);
}

TEST(BiasTest, RejectsMismatchedShape) {
  BiasLayer bias(4);
  EXPECT_THROW(bias.Forward(Tensor(Shape{3})), std::invalid_argument);
}

// ---------------------------------------------------------------- Dense

TEST(DenseTest, KnownMatrixProduct) {
  DenseLayer dense(2, 3);
  dense.weights() = Tensor(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor x(Shape{2}, {1.0f, 2.0f});
  const Tensor y = dense.Forward(x);
  EXPECT_EQ(y[0], 9.0f);
  EXPECT_EQ(y[1], 12.0f);
  EXPECT_EQ(y[2], 15.0f);
}

TEST(DenseTest, BatchForwardMatchesRowwise) {
  DenseLayer dense(5, 4);
  dense.weights() = RandomT(Shape{5, 4}, 2);
  const Tensor batch = RandomT(Shape{3, 5}, 3);
  const Tensor y = dense.Forward(batch);
  ASSERT_EQ(y.shape(), Shape({3, 4}));
  for (std::size_t r = 0; r < 3; ++r) {
    Tensor row(Shape{5});
    for (std::size_t c = 0; c < 5; ++c) row[c] = batch.at(r, c);
    const Tensor yr = dense.Forward(row);
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(y.at(r, c), yr[c]);
    }
  }
}

TEST(DenseTest, RejectsWrongWidth) {
  DenseLayer dense(5, 4);
  EXPECT_THROW(dense.Forward(Tensor(Shape{4})), std::invalid_argument);
}

// ----------------------------------------------------------------- Conv

TEST(ConvTest, OutputShapes) {
  Conv2DLayer valid(3, 1, 32, Padding::kValid);
  EXPECT_EQ(valid.OutputShape(Shape{28, 28, 1}), Shape({26, 26, 32}));
  Conv2DLayer same(3, 3, 32, Padding::kSame);
  EXPECT_EQ(same.OutputShape(Shape{32, 32, 3}), Shape({32, 32, 32}));
  Conv2DLayer same5(5, 3, 96, Padding::kSame);
  EXPECT_EQ(same5.OutputShape(Shape{32, 32, 3}), Shape({32, 32, 96}));
}

TEST(ConvTest, IdentityFilterPassesThrough) {
  // 1×1 filter with weight 1 is the identity on a single channel.
  Conv2DLayer conv(1, 1, 1, Padding::kValid);
  conv.filters().Fill(1.0f);
  const Tensor x = RandomT(Shape{5, 5, 1}, 4);
  EXPECT_EQ(MaxAbsDiff(conv.Forward(x), x), 0.0f);
}

TEST(ConvTest, HandComputedValidConvolution) {
  // 2×2 input, 2×2 averaging-ish filter, single output pixel.
  Conv2DLayer conv(2, 1, 1, Padding::kValid);
  conv.filters() = Tensor(Shape{2, 2, 1, 1}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor x(Shape{2, 2, 1}, {10.0f, 20.0f, 30.0f, 40.0f});
  const Tensor y = conv.Forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10 + 2 * 20 + 3 * 30 + 4 * 40);
}

TEST(ConvTest, SamePaddingZeroBorders) {
  // All-ones 3×3 filter over an all-ones input: interior pixels see 9 ones,
  // corners only 4 (rest is zero padding).
  Conv2DLayer conv(3, 1, 1, Padding::kSame);
  conv.filters().Fill(1.0f);
  const Tensor x = Tensor::Full(Shape{4, 4, 1}, 1.0f);
  const Tensor y = conv.Forward(x);
  EXPECT_FLOAT_EQ(y.at(1, 1, 0), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0), 6.0f);
}

TEST(ConvTest, ForwardMatchesDirectSum) {
  // im2col forward against a literal implementation of equation 4.
  Conv2DLayer conv(3, 2, 4, Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 2, 4}, 5);
  const Tensor x = RandomT(Shape{6, 6, 2}, 6);
  const Tensor y = conv.Forward(x);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t k = 0; k < 4; ++k) {
        float acc = 0.0f;
        for (std::size_t f1 = 0; f1 < 3; ++f1) {
          for (std::size_t f2 = 0; f2 < 3; ++f2) {
            for (std::size_t z = 0; z < 2; ++z) {
              acc += conv.filters().at(f1, f2, z, k) *
                     x.at(i + f1, j + f2, z);
            }
          }
        }
        EXPECT_NEAR(y.at(i, j, k), acc, 1e-4f) << i << "," << j << "," << k;
      }
    }
  }
}

TEST(ConvTest, PatchMatrixRoundTripValid) {
  Conv2DLayer conv(3, 3, 8, Padding::kValid);
  const Tensor x = RandomT(Shape{7, 7, 3}, 7);
  const Tensor patches = conv.BuildPatchMatrix(x);
  EXPECT_EQ(patches.shape(), Shape({25, 27}));
  const Tensor back = conv.ScatterPatchesToInput(patches, 7);
  EXPECT_EQ(MaxAbsDiff(back, x), 0.0f);
}

TEST(ConvTest, PatchMatrixRoundTripSame) {
  Conv2DLayer conv(5, 2, 4, Padding::kSame);
  const Tensor x = RandomT(Shape{8, 8, 2}, 8);
  const Tensor back =
      conv.ScatterPatchesToInput(conv.BuildPatchMatrix(x), 8);
  EXPECT_EQ(MaxAbsDiff(back, x), 0.0f);
}

TEST(ConvTest, RejectsEvenFilterWithSamePadding) {
  EXPECT_THROW(Conv2DLayer(2, 1, 1, Padding::kSame), std::invalid_argument);
}

TEST(ConvTest, RejectsWrongChannels) {
  Conv2DLayer conv(3, 2, 4, Padding::kValid);
  EXPECT_THROW(conv.Forward(RandomT(Shape{6, 6, 3}, 9)),
               std::invalid_argument);
}

// -------------------------------------------------------------- MaxPool

TEST(MaxPoolTest, SelectsWindowMaximum) {
  MaxPool2DLayer pool(2);
  Tensor x(Shape{4, 4, 1});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.Forward(x);
  ASSERT_EQ(y.shape(), Shape({2, 2, 1}));
  EXPECT_EQ(y.at(0, 0, 0), 5.0f);
  EXPECT_EQ(y.at(0, 1, 0), 7.0f);
  EXPECT_EQ(y.at(1, 0, 0), 13.0f);
  EXPECT_EQ(y.at(1, 1, 0), 15.0f);
}

TEST(MaxPoolTest, ChannelsIndependent) {
  MaxPool2DLayer pool(2);
  Tensor x(Shape{2, 2, 2});
  x.at(0, 0, 0) = 5.0f;
  x.at(1, 1, 1) = 7.0f;
  const Tensor y = pool.Forward(x);
  EXPECT_EQ(y.at(0, 0, 0), 5.0f);
  EXPECT_EQ(y.at(0, 0, 1), 7.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2DLayer pool(2);
  Tensor x(Shape{2, 2, 1});
  x.at(0, 1, 0) = 3.0f;  // max
  const Tensor y = pool.Forward(x);
  const Tensor dy = Tensor::Full(Shape{1, 1, 1}, 2.0f);
  const Tensor dx = pool.Backward(x, y, dy, {});
  EXPECT_EQ(dx.at(0, 1, 0), 2.0f);
  EXPECT_EQ(dx.at(0, 0, 0), 0.0f);
}

TEST(MaxPoolTest, RejectsIndivisibleInput) {
  MaxPool2DLayer pool(2);
  EXPECT_THROW(pool.Forward(Tensor(Shape{5, 5, 1})), std::invalid_argument);
}

// --------------------------------------------- numerical gradient checks

/// Central-difference gradient check of layer parameters and inputs.
void CheckGradients(Layer& layer, const Tensor& x, std::uint64_t seed) {
  const Tensor y = layer.Forward(x);
  // Random upstream gradient defines scalar loss L = Σ dy ⊙ y.
  Prng prng(seed);
  Tensor dy(y.shape());
  FillRandom(dy, prng);

  std::vector<float> dparams(layer.ParamCount(), 0.0f);
  const Tensor dx = layer.Backward(x, y, dy, dparams);

  const float eps = 1e-2f;
  auto loss = [&](const Tensor& input) {
    const Tensor out = layer.Forward(input);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc += static_cast<double>(out[i]) * static_cast<double>(dy[i]);
    }
    return acc;
  };

  // Input gradient at a handful of positions.
  Tensor probe = x;
  for (std::size_t i = 0; i < std::min<std::size_t>(6, x.size()); ++i) {
    const std::size_t pos = (i * 37) % x.size();
    const float saved = probe[pos];
    probe[pos] = saved + eps;
    const double up = loss(probe);
    probe[pos] = saved - eps;
    const double down = loss(probe);
    probe[pos] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dx[pos], numeric, 2e-2)
        << "input gradient at " << pos;
  }

  // Parameter gradient at a handful of positions.
  auto params = layer.Params();
  for (std::size_t i = 0; i < std::min<std::size_t>(6, params.size()); ++i) {
    const std::size_t pos = (i * 53) % params.size();
    const float saved = params[pos];
    params[pos] = saved + eps;
    const double up = loss(x);
    params[pos] = saved - eps;
    const double down = loss(x);
    params[pos] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(dparams[pos], numeric, 2e-2)
        << "param gradient at " << pos;
  }
}

TEST(GradientCheck, Dense) {
  DenseLayer dense(6, 4);
  dense.weights() = RandomT(Shape{6, 4}, 11);
  CheckGradients(dense, RandomT(Shape{6}, 12), 13);
}

TEST(GradientCheck, ConvValid) {
  Conv2DLayer conv(3, 2, 3, Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 2, 3}, 14);
  CheckGradients(conv, RandomT(Shape{5, 5, 2}, 15), 16);
}

TEST(GradientCheck, ConvSame) {
  Conv2DLayer conv(3, 1, 2, Padding::kSame);
  conv.filters() = RandomT(Shape{3, 3, 1, 2}, 17);
  CheckGradients(conv, RandomT(Shape{4, 4, 1}, 18), 19);
}

TEST(GradientCheck, Bias) {
  BiasLayer bias(4);
  bias.bias() = RandomT(Shape{4}, 20);
  CheckGradients(bias, RandomT(Shape{3, 3, 4}, 21), 22);
}

}  // namespace
}  // namespace milr::nn
