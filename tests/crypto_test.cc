#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes.h"
#include "crypto/xts.h"
#include "support/prng.h"

namespace milr::crypto {
namespace {

Key128 KeyFromBytes(std::initializer_list<std::uint8_t> bytes) {
  Key128 key{};
  std::size_t i = 0;
  for (const auto b : bytes) key[i++] = b;
  return key;
}

// FIPS-197 Appendix B known-answer test.
TEST(Aes128Test, Fips197Vector) {
  const Key128 key = KeyFromBytes({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                   0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                   0x4f, 0x3c});
  Block block = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                          0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key);
  aes.EncryptBlock(block);
  EXPECT_EQ(block, expected);
}

// FIPS-197 Appendix C.1 vector.
TEST(Aes128Test, Fips197AppendixC) {
  const Key128 key = KeyFromBytes({0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                   0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                   0x0e, 0x0f});
  Block block = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  aes.EncryptBlock(block);
  EXPECT_EQ(block, expected);
}

TEST(Aes128Test, DecryptInvertsEncrypt) {
  milr::Prng prng(3);
  Key128 key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  Aes128 aes(key);
  for (int trial = 0; trial < 50; ++trial) {
    Block original{};
    for (auto& b : original) {
      b = static_cast<std::uint8_t>(prng.NextBelow(256));
    }
    Block block = original;
    aes.EncryptBlock(block);
    EXPECT_NE(block, original);
    aes.DecryptBlock(block);
    EXPECT_EQ(block, original);
  }
}

TEST(Gf128Test, MulAlphaShiftsBits) {
  Block v{};
  v[0] = 0x01;
  Gf128MulAlpha(v);
  EXPECT_EQ(v[0], 0x02);
  // Overflow of the top bit folds back via the reduction polynomial 0x87.
  Block top{};
  top[15] = 0x80;
  Gf128MulAlpha(top);
  EXPECT_EQ(top[0], 0x87);
  EXPECT_EQ(top[15], 0x00);
}

TEST(XtsTest, RoundTrip) {
  milr::Prng prng(5);
  Key128 k1{}, k2{};
  for (auto& b : k1) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  for (auto& b : k2) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  XtsAes xts(k1, k2);
  std::vector<std::uint8_t> data(256);
  for (auto& b : data) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  const auto original = data;
  xts.Encrypt(data, /*sector=*/7);
  EXPECT_NE(data, original);
  xts.Decrypt(data, /*sector=*/7);
  EXPECT_EQ(data, original);
}

TEST(XtsTest, WrongSectorFailsToDecrypt) {
  XtsAes xts(Key128{}, KeyFromBytes({1}));
  std::vector<std::uint8_t> data(64, 0xab);
  const auto original = data;
  xts.Encrypt(data, 1);
  xts.Decrypt(data, 2);
  EXPECT_NE(data, original);
}

TEST(XtsTest, BlocksGetDistinctTweaks) {
  // Identical plaintext blocks must encrypt differently (unlike ECB).
  XtsAes xts(KeyFromBytes({9}), KeyFromBytes({7}));
  std::vector<std::uint8_t> data(32, 0x55);
  xts.Encrypt(data, 0);
  EXPECT_NE(0, std::memcmp(data.data(), data.data() + 16, 16));
}

TEST(XtsTest, RejectsPartialBlocks) {
  XtsAes xts(Key128{}, Key128{});
  std::vector<std::uint8_t> data(15);
  EXPECT_THROW(xts.Encrypt(data, 0), std::invalid_argument);
}

// The property MILR is built around: one ciphertext bit flip destroys the
// whole 16-byte plaintext block (≈ half of its 128 bits flip), while other
// blocks are untouched.
TEST(XtsTest, CiphertextBitFlipCorruptsWholeBlock) {
  milr::Prng prng(11);
  Key128 k1{}, k2{};
  for (auto& b : k1) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  for (auto& b : k2) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  XtsAes xts(k1, k2);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(prng.NextBelow(256));
  const auto original = data;

  xts.Encrypt(data, 3);
  data[16] ^= 0x01;  // single bit in the second block
  xts.Decrypt(data, 3);

  int flipped_bits_block1 = 0;
  for (int i = 16; i < 32; ++i) {
    flipped_bits_block1 +=
        __builtin_popcount(static_cast<unsigned>(data[static_cast<std::size_t>(i)] ^
                                                 original[static_cast<std::size_t>(i)]));
  }
  // ~64 of 128 bits expected; anything above 30 is already unrecoverable by
  // SECDED.
  EXPECT_GT(flipped_bits_block1, 30);
  // All other blocks decrypt cleanly.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(data[static_cast<std::size_t>(i)], original[static_cast<std::size_t>(i)]);
  }
  for (int i = 32; i < 64; ++i) {
    EXPECT_EQ(data[static_cast<std::size_t>(i)], original[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace milr::crypto
