#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "support/prng.h"

namespace milr {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Prng prng(seed);
  Matrix m(rows, cols);
  for (auto& v : m.flat()) v = prng.NextDouble() * 2.0 - 1.0;
  return m;
}

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix identity = Matrix::Identity(4);
  const Matrix a = RandomMatrix(4, 4, 1);
  EXPECT_LT(MaxAbsDiff(MatMul(a, identity), a), 1e-15);
  EXPECT_LT(MaxAbsDiff(MatMul(identity, a), a), 1e-15);
}

TEST(MatrixTest, MultiplyShapeMismatchThrows) {
  EXPECT_THROW(MatMul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(MatrixTest, TransposeInvolution) {
  const Matrix a = RandomMatrix(3, 5, 2);
  EXPECT_LT(MaxAbsDiff(a.Transposed().Transposed(), a), 1e-16);
}

TEST(MatrixTest, KnownProduct) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

class SolveSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolveSizes, LuSolveRecoversX) {
  const std::size_t n = GetParam();
  const Matrix a = RandomMatrix(n, n, n);
  const Matrix x = RandomMatrix(n, 3, n + 1);
  const Matrix b = MatMul(a, x);
  auto solved = SolveLinear(a, b);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LT(MaxAbsDiff(solved.value(), x), 1e-8);
}

TEST_P(SolveSizes, InvertTimesSelfIsIdentity) {
  const std::size_t n = GetParam();
  const Matrix a = RandomMatrix(n, n, 100 + n);
  auto inv = Invert(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(MaxAbsDiff(MatMul(a, inv.value()), Matrix::Identity(n)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64, 128));

TEST(SolveTest, SingularMatrixReported) {
  Matrix a(2, 2, {1, 2, 2, 4});  // rank 1
  auto solved = SolveLinear(a, Matrix::Identity(2));
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kUnsolvable);
}

TEST(SolveTest, NonSquareLuRejected) {
  auto solved = SolveLinear(Matrix(2, 3), Matrix(2, 1));
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolveTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2, {0, 1, 1, 0});
  Matrix b(2, 1, {3, 4});
  auto solved = SolveLinear(a, b);
  ASSERT_TRUE(solved.ok());
  EXPECT_DOUBLE_EQ(solved.value().at(0, 0), 4);
  EXPECT_DOUBLE_EQ(solved.value().at(1, 0), 3);
}

TEST(SolveTest, RightSolve) {
  const Matrix a = RandomMatrix(4, 4, 9);
  const Matrix x = RandomMatrix(2, 4, 10);
  const Matrix b = MatMul(x, a);
  auto solved = SolveLinearRight(a, b);
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(MaxAbsDiff(solved.value(), x), 1e-9);
}

TEST(LeastSquaresTest, OverdeterminedExactSystem) {
  // A(20,5)·x = b with consistent b: LS solution equals the exact one.
  const Matrix a = RandomMatrix(20, 5, 21);
  const Matrix x = RandomMatrix(5, 2, 22);
  const Matrix b = MatMul(a, x);
  auto solved = SolveLeastSquares(a, b);
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(MaxAbsDiff(solved.value(), x), 1e-9);
}

TEST(LeastSquaresTest, MinimizesResidual) {
  // Inconsistent system: solution must satisfy the normal equations
  // Aᵀ(Ax − b) = 0.
  const Matrix a = RandomMatrix(10, 3, 31);
  const Matrix b = RandomMatrix(10, 1, 32);
  auto solved = SolveLeastSquares(a, b);
  ASSERT_TRUE(solved.ok());
  Matrix residual = MatMul(a, solved.value());
  for (std::size_t i = 0; i < residual.rows(); ++i) {
    residual.at(i, 0) -= b.at(i, 0);
  }
  const Matrix gradient = MatMul(a.Transposed(), residual);
  for (std::size_t i = 0; i < gradient.rows(); ++i) {
    EXPECT_NEAR(gradient.at(i, 0), 0.0, 1e-9);
  }
}

TEST(LeastSquaresTest, UnderdeterminedMinNorm) {
  // A(3,8): solution must satisfy A·x = b and lie in the row space.
  const Matrix a = RandomMatrix(3, 8, 41);
  const Matrix b = RandomMatrix(3, 1, 42);
  auto solved = SolveLeastSquares(a, b);
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(MaxAbsDiff(MatMul(a, solved.value()), b), 1e-9);
}

TEST(LeastSquaresTest, RankDeficientReported) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a.at(r, 0) = 1.0;
    a.at(r, 1) = 2.0;  // column 2 = 2 × column 1
  }
  auto solved = SolveLeastSquares(a, Matrix(4, 1));
  EXPECT_FALSE(solved.ok());
}

TEST(QrFactorizationTest, ReusableAcrossRhs) {
  const Matrix a = RandomMatrix(12, 4, 51);
  auto qr = QrFactorization::Compute(a);
  ASSERT_TRUE(qr.ok());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Matrix x = RandomMatrix(4, 1, 60 + seed);
    const Matrix b = MatMul(a, x);
    EXPECT_LT(MaxAbsDiff(qr.value().SolveLeastSquares(b), x), 1e-9);
  }
}

TEST(LuFactorizationTest, ReusableAcrossRhs) {
  const Matrix a = RandomMatrix(6, 6, 71);
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Matrix x = RandomMatrix(6, 2, 80 + seed);
    const Matrix b = MatMul(a, x);
    EXPECT_LT(MaxAbsDiff(lu.value().Solve(b), x), 1e-8);
  }
}

}  // namespace
}  // namespace milr
