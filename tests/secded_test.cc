#include <gtest/gtest.h>

#include "ecc/secded.h"
#include "support/prng.h"

namespace milr::ecc {
namespace {

TEST(SecdedTest, CleanWordDecodesClean) {
  Prng prng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t data = static_cast<std::uint32_t>(prng.NextU64());
    const std::uint8_t check = SecdedEncode(data);
    const auto decode = SecdedDecodeWord(data, check);
    EXPECT_EQ(decode.outcome, SecdedOutcome::kClean);
    EXPECT_EQ(decode.data, data);
  }
}

TEST(SecdedTest, CorrectsEverySingleDataBit) {
  Prng prng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t data = static_cast<std::uint32_t>(prng.NextU64());
    const std::uint8_t check = SecdedEncode(data);
    for (int bit = 0; bit < 32; ++bit) {
      const std::uint32_t corrupted = data ^ (std::uint32_t{1} << bit);
      const auto decode = SecdedDecodeWord(corrupted, check);
      EXPECT_EQ(decode.outcome, SecdedOutcome::kCorrectedSingle);
      EXPECT_EQ(decode.data, data) << "bit " << bit;
    }
  }
}

TEST(SecdedTest, CorrectsSingleCheckBitErrors) {
  Prng prng(3);
  const std::uint32_t data = static_cast<std::uint32_t>(prng.NextU64());
  const std::uint8_t check = SecdedEncode(data);
  for (int bit = 0; bit < 7; ++bit) {
    const std::uint8_t corrupted =
        static_cast<std::uint8_t>(check ^ (1 << bit));
    const auto decode = SecdedDecodeWord(data, corrupted);
    EXPECT_EQ(decode.outcome, SecdedOutcome::kCorrectedSingle);
    EXPECT_EQ(decode.data, data);
  }
}

TEST(SecdedTest, DetectsAllDoubleDataBitErrors) {
  Prng prng(4);
  const std::uint32_t data = static_cast<std::uint32_t>(prng.NextU64());
  const std::uint8_t check = SecdedEncode(data);
  for (int b1 = 0; b1 < 32; ++b1) {
    for (int b2 = b1 + 1; b2 < 32; ++b2) {
      const std::uint32_t corrupted =
          data ^ (std::uint32_t{1} << b1) ^ (std::uint32_t{1} << b2);
      const auto decode = SecdedDecodeWord(corrupted, check);
      EXPECT_EQ(decode.outcome, SecdedOutcome::kDetectedUncorrectable)
          << b1 << "," << b2;
      EXPECT_EQ(decode.data, corrupted);  // no repair attempted
    }
  }
}

TEST(SecdedTest, WholeWordErrorIsNotCorrected) {
  // All 32 bits flipped — the plaintext-space error class. SECDED must not
  // restore the original word (it may mis-correct, but never repair).
  Prng prng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t data = static_cast<std::uint32_t>(prng.NextU64());
    const std::uint8_t check = SecdedEncode(data);
    const auto decode = SecdedDecodeWord(~data, check);
    EXPECT_NE(decode.data, data);
  }
}

TEST(SecdedTest, CheckBitsDifferAcrossData) {
  EXPECT_NE(SecdedEncode(0x00000001u), SecdedEncode(0x00000002u));
  EXPECT_NE(SecdedEncode(0xdeadbeefu), SecdedEncode(0xdeadbeeeu));
}

}  // namespace
}  // namespace milr::ecc
