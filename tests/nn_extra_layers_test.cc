// The auxiliary layers of §IV-E d: average pooling, dropout, zero padding —
// forward semantics, training gradients and MILR handling.
#include <gtest/gtest.h>

#include "memory/fault_injector.h"
#include "milr/protector.h"
#include "nn/init.h"
#include "nn/layer.h"
#include "nn/model.h"
#include "nn/pool.h"
#include "support/prng.h"

namespace milr::nn {
namespace {

Tensor RandomT(Shape shape, std::uint64_t seed) {
  Prng prng(seed);
  return RandomTensor(std::move(shape), prng);
}

TEST(AvgPoolTest, AveragesWindows) {
  AvgPool2DLayer pool(2);
  Tensor x(Shape{2, 2, 1});
  x.at(0, 0, 0) = 1.0f;
  x.at(0, 1, 0) = 2.0f;
  x.at(1, 0, 0) = 3.0f;
  x.at(1, 1, 0) = 6.0f;
  const Tensor y = pool.Forward(x);
  ASSERT_EQ(y.shape(), Shape({1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPoolTest, BackwardSpreadsGradientUniformly) {
  AvgPool2DLayer pool(2);
  const Tensor x = RandomT(Shape{4, 4, 2}, 1);
  const Tensor y = pool.Forward(x);
  Tensor dy(y.shape());
  dy.Fill(4.0f);
  const Tensor dx = pool.Backward(x, y, dy, {});
  for (std::size_t i = 0; i < dx.size(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], 1.0f);  // 4.0 / window(4)
  }
}

TEST(AvgPoolTest, RejectsIndivisibleInput) {
  AvgPool2DLayer pool(3);
  EXPECT_THROW(pool.Forward(Tensor(Shape{4, 4, 1})), std::invalid_argument);
}

TEST(DropoutTest, IdentityAtInference) {
  DropoutLayer dropout(0.4f);
  const Tensor x = RandomT(Shape{5, 5, 3}, 2);
  EXPECT_EQ(MaxAbsDiff(dropout.Forward(x), x), 0.0f);
  EXPECT_EQ(dropout.rate(), 0.4f);
  const Tensor dy = RandomT(Shape{5, 5, 3}, 3);
  EXPECT_EQ(MaxAbsDiff(dropout.Backward(x, x, dy, {}), dy), 0.0f);
}

TEST(ZeroPadTest, EmbedsAndCropsLosslessly) {
  ZeroPad2DLayer pad(2);
  const Tensor x = RandomT(Shape{5, 5, 3}, 4);
  const Tensor y = pad.Forward(x);
  ASSERT_EQ(y.shape(), Shape({9, 9, 3}));
  // Border is zero.
  EXPECT_EQ(y.at(0, 0, 0), 0.0f);
  EXPECT_EQ(y.at(8, 8, 2), 0.0f);
  EXPECT_EQ(y.at(1, 4, 1), 0.0f);
  // Interior matches, and Crop inverts exactly.
  EXPECT_EQ(y.at(2, 2, 0), x.at(0, 0, 0));
  EXPECT_EQ(MaxAbsDiff(pad.Crop(y), x), 0.0f);
}

TEST(ZeroPadTest, BackwardCropsGradient) {
  ZeroPad2DLayer pad(1);
  const Tensor x = RandomT(Shape{3, 3, 1}, 5);
  const Tensor y = pad.Forward(x);
  const Tensor dy = RandomT(y.shape(), 6);
  const Tensor dx = pad.Backward(x, y, dy, {});
  ASSERT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(dx.at(1, 1, 0), dy.at(2, 2, 0));
}

TEST(ZeroPadTest, CropRejectsTooSmall) {
  ZeroPad2DLayer pad(3);
  EXPECT_THROW(pad.Crop(Tensor(Shape{5, 5, 1})), std::invalid_argument);
}

// MILR end-to-end through a model containing all the auxiliary layers.
TEST(AuxLayersMilrTest, RecoveryCrossesDropoutPadAndAvgPool) {
  Model model(Shape{8, 8, 2});
  model.AddZeroPad(1);                                             // 0
  model.AddConv(3, 12, Padding::kValid).AddBias().AddReLU();       // 1,2,3
  model.AddDropout(0.25f);                                         // 4
  model.AddAvgPool(2);                                             // 5
  model.AddFlatten();                                              // 6
  model.AddDense(5).AddBias();                                     // 7,8
  InitHeUniform(model, 77);
  const auto golden = model.SnapshotParams();

  core::MilrProtector protector(model);
  // AvgPool forces a checkpoint; zero-pad/dropout must be pass-through.
  EXPECT_EQ(protector.plan().layers[0].backward,
            core::BackwardMode::kCrop);
  EXPECT_EQ(protector.plan().layers[4].backward,
            core::BackwardMode::kIdentity);
  EXPECT_TRUE(protector.plan().layers[5].input_checkpoint);

  // Corrupt the conv (its golden output must propagate backward through
  // dropout to the avg-pool checkpoint) and the dense layer.
  Prng prng(9);
  memory::CorruptWholeLayer(model, 1, prng);
  memory::CorruptWholeLayer(model, 7, prng);
  const auto recovery = protector.DetectAndRecover();
  EXPECT_TRUE(recovery.all_ok());
  for (const std::size_t layer : {std::size_t{1}, std::size_t{7}}) {
    auto params = model.layer(layer).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      EXPECT_NEAR(params[p], golden[layer][p], 1e-3f) << layer << ":" << p;
    }
  }
}

}  // namespace
}  // namespace milr::nn
