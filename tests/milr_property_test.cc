// Property-style sweeps over layer geometry and random architectures: the
// algebraic invariants MILR rests on must hold for *every* shape, not just
// the paper's three networks.
#include <gtest/gtest.h>

#include <tuple>

#include "memory/fault_injector.h"
#include "milr/algebra.h"
#include "milr/protector.h"
#include "nn/init.h"
#include "nn/model.h"
#include "support/prng.h"

namespace milr::core {
namespace {

Tensor RandomT(Shape shape, std::uint64_t seed) {
  Prng prng(seed);
  return RandomTensor(std::move(shape), prng);
}

// ---------------------------------------------------------------- dense

// (N, P) sweep: R(x, f(x,p)) == p whenever M ≥ N.
class DenseSolveProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(DenseSolveProperty, SolveRecoversParameters) {
  const auto [n, p] = GetParam();
  nn::DenseLayer dense(n, p);
  dense.weights() = RandomT(Shape{n, p}, 17 * n + p);
  const Tensor golden = dense.weights();
  const Tensor rows = MakeDenseDummyRows(n, n, 31 * n + p);
  const Tensor outputs = dense.Forward(rows);
  dense.weights().Fill(0.0f);
  auto solved = DenseSolveParams(dense, Tensor(Shape{n}), Tensor(Shape{p}),
                                 n, 31 * n + p, outputs);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-4f)
      << "N=" << n << " P=" << p;
}

TEST_P(DenseSolveProperty, BackwardInvertsForward) {
  const auto [n, p] = GetParam();
  nn::DenseLayer dense(n, p);
  dense.weights() = RandomT(Shape{n, p}, 41 * n + p);
  const Tensor x = RandomT(Shape{n}, 43 * n + p);
  const Tensor y = dense.Forward(x);
  if (p >= n) {
    auto back = DenseBackward(dense, y, 0, 0, {});
    ASSERT_TRUE(back.ok());
    EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-3f) << "N=" << n << " P=" << p;
  } else {
    // Augment with α dummy columns and their golden outputs.
    const std::size_t alpha = n - p;
    const std::uint64_t seed = 47 * n + p;
    const Tensor dummy = MakeDenseDummyColumns(n, alpha, seed);
    std::vector<float> dummy_outputs(alpha);
    for (std::size_t c = 0; c < alpha; ++c) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        acc += static_cast<double>(x[r]) * static_cast<double>(dummy.at(r, c));
      }
      dummy_outputs[c] = static_cast<float>(acc);
    }
    auto back = DenseBackward(dense, y, alpha, seed, dummy_outputs);
    ASSERT_TRUE(back.ok());
    EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-3f) << "N=" << n << " P=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseSolveProperty,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 7),
                      std::make_tuple(7, 2), std::make_tuple(16, 16),
                      std::make_tuple(33, 5), std::make_tuple(5, 33),
                      std::make_tuple(64, 10), std::make_tuple(100, 100)));

// ----------------------------------------------------------------- conv

// (F, Z, Y, M, padding) sweep of the conv invariants.
struct ConvCase {
  std::size_t f, z, y, m;
  nn::Padding padding;
};

class ConvProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvProperty, SolveRecoversFiltersWhenDetermined) {
  const auto c = GetParam();
  nn::Conv2DLayer conv(c.f, c.z, c.y, c.padding);
  const std::size_t g = conv.OutputExtent(c.m);
  if (g * g < conv.PatchLength()) GTEST_SKIP() << "partial-recovery regime";
  conv.filters() = RandomT(conv.filters().shape(), 3 * c.f + c.z + c.y);
  const Tensor golden = conv.filters();
  const Tensor x = RandomT(Shape{c.m, c.m, c.z}, 5 * c.f + c.z);
  const Tensor y_out = conv.Forward(x);
  conv.filters().Fill(0.5f);
  auto solved = ConvSolveParamsFull(conv, x, y_out);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-3f);
}

TEST_P(ConvProperty, BackwardInvertsForwardWhenDetermined) {
  const auto c = GetParam();
  nn::Conv2DLayer conv(c.f, c.z, c.y, c.padding);
  if (c.y < conv.PatchLength()) GTEST_SKIP() << "needs dummy filters";
  conv.filters() = RandomT(conv.filters().shape(), 7 * c.f + c.z + c.y);
  const Tensor x = RandomT(Shape{c.m, c.m, c.z}, 11 * c.f + c.m);
  const Tensor y_out = conv.Forward(x);
  auto back = ConvBackward(conv, y_out, c.m, 0, 0, Tensor{});
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-3f);
}

TEST_P(ConvProperty, PartialSolveRepairsSparseErrors) {
  const auto c = GetParam();
  nn::Conv2DLayer conv(c.f, c.z, c.y, c.padding);
  conv.filters() = RandomT(conv.filters().shape(), 13 * c.f + c.z + c.y);
  const Tensor golden = conv.filters();
  const Tensor x = RandomT(Shape{c.m, c.m, c.z}, 17 * c.f + c.m);
  const Tensor y_out = conv.Forward(x);
  // Corrupt a handful of weights — fewer than G² per filter.
  Prng prng(19 * c.f + c.y);
  std::vector<std::size_t> victims;
  const std::size_t count = std::min<std::size_t>(4, golden.size());
  while (victims.size() < count) {
    const std::size_t v = prng.NextBelow(golden.size());
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
      conv.filters()[v] += 3.0f;
    }
  }
  PartialSolveStats stats;
  auto solved = ConvSolveParamsPartial(conv, x, y_out, victims, &stats);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvProperty,
    ::testing::Values(ConvCase{1, 1, 1, 4, nn::Padding::kValid},
                      ConvCase{1, 3, 5, 6, nn::Padding::kValid},
                      ConvCase{3, 1, 9, 8, nn::Padding::kValid},
                      ConvCase{3, 1, 12, 7, nn::Padding::kSame},
                      ConvCase{3, 2, 20, 9, nn::Padding::kValid},
                      ConvCase{5, 1, 25, 11, nn::Padding::kSame},
                      ConvCase{3, 4, 8, 10, nn::Padding::kValid},
                      ConvCase{5, 2, 50, 12, nn::Padding::kValid}));

// -------------------------------------------- random architecture sweep

/// Builds a random small CNN from a seed (structure varies: conv counts,
/// filter sizes, pooling flavor, aux layers).
nn::Model RandomModel(std::uint64_t seed) {
  Prng prng(seed);
  const std::size_t input = 8 + 2 * prng.NextBelow(3);  // 8/10/12
  nn::Model model(Shape{input, input, 1 + prng.NextBelow(2)});
  if (prng.NextBool(0.3)) model.AddZeroPad(1);
  const std::size_t convs = 1 + prng.NextBelow(2);
  for (std::size_t i = 0; i < convs; ++i) {
    model.AddConv(3, 6 + 2 * prng.NextBelow(4), nn::Padding::kSame);
    model.AddBias();
    model.AddReLU();
  }
  if (prng.NextBool(0.5)) {
    model.AddMaxPool(2);
  } else {
    model.AddAvgPool(2);
  }
  if (prng.NextBool(0.3)) model.AddDropout(0.2f);
  model.AddFlatten();
  model.AddDense(4 + prng.NextBelow(8)).AddBias().AddReLU();
  model.AddDense(3).AddBias();
  nn::InitHeUniform(model, seed * 31 + 1);
  return model;
}

class RandomArchitecture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomArchitecture, AnyErrorsInOneLayerHeal) {
  // The paper's guarantee: ANY number of weight errors within a single
  // layer per checkpoint segment is recoverable. Sweep it per layer over
  // random architectures (conv+bias pairs in the same segment are covered
  // by the joint-solve extension below).
  nn::Model model = RandomModel(GetParam());
  const auto golden = model.SnapshotParams();
  MilrProtector protector(model, ExtendedMilrConfig());

  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    if (model.layer(i).ParamCount() == 0) continue;
    if (protector.plan().layers[i].solve == SolveMode::kConvPartial) {
      continue;  // whole-layer corruption exceeds the G² budget by design
    }
    Prng prng(GetParam() * 101 + i);
    memory::CorruptWholeLayer(model, i, prng);
    protector.DetectAndRecover();
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      EXPECT_NEAR(params[p], golden[i][p], 5e-3f)
          << "arch seed " << GetParam() << " layer " << i << " param " << p;
    }
    model.RestoreParams(golden);
  }
}

TEST(RandomArchitectureStats, SparseErrorScatterHealsMostArchitectures) {
  // A light scatter of whole-weight errors across the whole network heals
  // an architecture fully unless two mutually-dependent layers of one
  // segment were hit (the paper's stated limit, partially lifted by the
  // joint/multi-pass extensions). Per architecture that is all-or-nothing,
  // so the meaningful property is the success rate across architectures.
  int healed = 0;
  const std::uint64_t archs = 12;
  for (std::uint64_t seed = 1; seed <= archs; ++seed) {
    nn::Model model = RandomModel(seed);
    const auto golden = model.SnapshotParams();
    MilrProtector protector(model, ExtendedMilrConfig());
    Prng prng(seed * 211 + 3);
    memory::InjectExactWeightErrors(model, 6, prng);
    protector.DetectAndRecover();

    nn::Model reference = RandomModel(seed);
    reference.RestoreParams(golden);
    Prng probe_prng(5);
    bool all_close = true;
    for (int probe = 0; probe < 4; ++probe) {
      const Tensor x = RandomTensor(model.input_shape(), probe_prng);
      if (MaxAbsDiff(model.Predict(x), reference.Predict(x)) >= 0.05f) {
        all_close = false;
      }
    }
    if (all_close) ++healed;
  }
  EXPECT_GE(healed, 9) << "healed " << healed << "/" << archs;
}

TEST_P(RandomArchitecture, CleanDetectIsSilent) {
  nn::Model model = RandomModel(GetParam());
  MilrProtector protector(model);
  EXPECT_FALSE(protector.Detect().any());
}

TEST_P(RandomArchitecture, StorageNeverExceedsThreeBackups) {
  // Sanity bound: MILR's reliable storage stays within a small multiple of
  // the network itself for arbitrary small architectures.
  nn::Model model = RandomModel(GetParam());
  MilrProtector protector(model);
  EXPECT_LT(protector.Storage().total(), 3 * model.TotalParamBytes() + 65536);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArchitecture,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace milr::core
