// BoundedQueue contract tests, parameterized over BOTH implementations
// (mutex oracle and lock-free ring): every behavior the layers above
// depend on — TryPopBatch racing Close, Reopen after a drain, linger
// wake-ups, blocking-push backpressure, racing-PopBatch conservation and
// the advisory depth counter's bounds — must hold identically for the two
// kinds, because queue selection is a runtime config knob (MILR_QUEUE).
// Runs under TSan in CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/request_queue.h"

namespace milr::runtime {
namespace {

using namespace std::chrono_literals;

class BoundedQueueTest : public ::testing::TestWithParam<QueueKind> {
 protected:
  QueueKind kind() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(
    BothKinds, BoundedQueueTest,
    ::testing::Values(QueueKind::kMutex, QueueKind::kLockfree),
    [](const ::testing::TestParamInfo<QueueKind>& info) {
      return std::string(QueueKindName(info.param));
    });

TEST_P(BoundedQueueTest, TryPopBatchEmptyReturnsImmediatelyOpenOrClosed) {
  BoundedQueue<int> queue(8, kind());
  std::vector<int> out;
  // Open + empty: no linger may be paid (a granted worker must never park
  // on an empty queue).
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.TryPopBatch(out, 4, 200ms), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 100ms);
  queue.Close();
  EXPECT_EQ(queue.TryPopBatch(out, 4, 200ms), 0u);
}

TEST_P(BoundedQueueTest, ClosedQueueDrainsBacklogWithoutLinger) {
  BoundedQueue<int> queue(8, kind());
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.TryPush(v));
  }
  queue.Close();
  std::vector<int> out;
  // Closed-with-backlog still drains, in whatever bites the backlog
  // provides, and never lingers for a fuller batch.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.TryPopBatch(out, 3, 500ms), 3u);
  EXPECT_EQ(queue.TryPopBatch(out, 3, 500ms), 2u);
  EXPECT_EQ(queue.TryPopBatch(out, 3, 500ms), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 400ms);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
}

TEST_P(BoundedQueueTest, LingerFillsBatchFromLateArrivals) {
  BoundedQueue<int> queue(8, kind());
  int v = 0;
  ASSERT_TRUE(queue.TryPush(v));
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    for (int i = 1; i < 4; ++i) {
      int item = i;
      queue.TryPush(item);
    }
  });
  std::vector<int> out;
  // One item is ready; the linger window must pick up the other three.
  EXPECT_EQ(queue.TryPopBatch(out, 4, 2000ms), 4u);
  producer.join();
}

TEST_P(BoundedQueueTest, CloseWakesLingeringConsumer) {
  BoundedQueue<int> queue(8, kind());
  int v = 0;
  ASSERT_TRUE(queue.TryPush(v));
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    queue.Close();
  });
  std::vector<int> out;
  const auto start = std::chrono::steady_clock::now();
  // The consumer holds a partial batch inside a long linger; Close must
  // cut the wait short instead of letting shutdown eat the full window.
  EXPECT_EQ(queue.TryPopBatch(out, 4, 5000ms), 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2500ms);
  closer.join();
}

TEST_P(BoundedQueueTest, ReopenAfterDrainRestoresAdmissionAndDepth) {
  BoundedQueue<int> queue(4, kind());
  int v = 1;
  ASSERT_TRUE(queue.TryPush(v));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(v));
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(out, 4, 0us), 1u);  // drain the backlog
  EXPECT_EQ(queue.DepthRelaxed(), 0u);

  queue.Reopen();
  EXPECT_FALSE(queue.closed());
  v = 2;
  EXPECT_TRUE(queue.TryPush(v));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.DepthRelaxed(), 2u);
  EXPECT_EQ(queue.size(), 2u);
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 2);
  EXPECT_EQ(queue.DepthRelaxed(), 1u);
}

TEST_P(BoundedQueueTest, DepthTracksSizeThroughEveryMutation) {
  BoundedQueue<int> queue(8, kind());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(queue.Push(i));
    EXPECT_EQ(queue.DepthRelaxed(), queue.size());
  }
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(out, 4, 0us), 4u);
  EXPECT_EQ(queue.DepthRelaxed(), 2u);
  (void)queue.Pop();
  EXPECT_EQ(queue.DepthRelaxed(), 1u);
}

TEST_P(BoundedQueueTest, TryPushShedsAtExactLogicalCapacity) {
  // The lock-free ring rounds its PHYSICAL capacity to a power of two,
  // but admission must honor the LOGICAL capacity the caller configured —
  // the shed point the rejection metrics and the co-hosting memory
  // budgets are calibrated against.
  BoundedQueue<int> queue(3, kind());
  EXPECT_EQ(queue.capacity(), 3u);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // a shed item is left untouched
  EXPECT_EQ(queue.size(), 3u);
}

TEST_P(BoundedQueueTest, PushBlocksOnFullUntilPopFrees) {
  BoundedQueue<int> queue(2, kind());
  EXPECT_TRUE(queue.Push(0));
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // must block until the pop below
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 0);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(queue.size(), 2u);
}

TEST_P(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1, kind());
  EXPECT_TRUE(queue.Push(0));
  std::atomic<bool> bounced{false};
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(1));  // parked on full; Close must bounce it
    bounced.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  queue.Close();
  producer.join();
  EXPECT_TRUE(bounced.load(std::memory_order_acquire));
  EXPECT_EQ(queue.size(), 1u);  // the original item drains normally
}

TEST_P(BoundedQueueTest, TryPopBatchRacingCloseLosesNoItems) {
  // Producers block in Push until Close bounces them; consumers drain
  // with TryPopBatch through the closure. Every admitted item must come
  // out exactly once — the Stop() drain guarantee the pool relies on.
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> queue(16, kind());
    std::atomic<int> admitted{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < 3; ++t) {
      producers.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          if (!queue.Push(t * 1000 + i)) break;  // closed: stop producing
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::vector<std::thread> consumers;
    for (int t = 0; t < 2; ++t) {
      consumers.emplace_back([&] {
        std::vector<int> out;
        for (;;) {
          out.clear();
          const std::size_t n = queue.TryPopBatch(out, 8, 100us);
          popped.fetch_add(static_cast<int>(n),
                           std::memory_order_relaxed);
          // Exit only when closed AND drained. The size() term matters
          // for the lock-free queue: a producer that won admission
          // against the closing flag may still be publishing its item
          // into the ring — size() counts it, a bare "n == 0" poll might
          // miss it and strand the item.
          if (n == 0 && queue.closed() && queue.size() == 0) return;
          if (n == 0) std::this_thread::yield();
        }
      });
    }
    std::this_thread::sleep_for(1ms);
    queue.Close();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(popped.load(), admitted.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.DepthRelaxed(), 0u);
  }
}

TEST_P(BoundedQueueTest, RacingPopBatchConsumersShareTheBacklogExactly) {
  // Several consumers batch-pop one producer stream concurrently: the
  // union of their batches must be the exact item set (no loss, no
  // duplication — the ABA case the ring's per-cell sequences exist for),
  // and each consumer's own stream must be in push order (dequeue order
  // is FIFO; racing consumers interleave BETWEEN each other but a single
  // consumer can never see reordered items).
  constexpr int kItems = 4000;
  constexpr int kConsumers = 3;
  BoundedQueue<int> queue(32, kind());
  std::vector<std::vector<int>> got(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<int> out;
      for (;;) {
        out.clear();
        const std::size_t n = queue.TryPopBatch(out, 7, 50us);
        got[c].insert(got[c].end(), out.begin(), out.end());
        if (n == 0 && queue.closed() && queue.size() == 0) return;
        if (n == 0) std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.Push(i));
  }
  queue.Close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (int c = 0; c < kConsumers; ++c) {
    // Per-consumer monotonicity: a consumer's batches are drained in
    // queue order, so its concatenated stream must be increasing.
    EXPECT_TRUE(std::is_sorted(got[c].begin(), got[c].end()))
        << "consumer " << c << " saw reordered items";
    all.insert(all.end(), got[c].begin(), got[c].end());
  }
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i)
        << "item lost or duplicated";
  }
}

TEST_P(BoundedQueueTest, CloseWhilePoppingHandsOffEveryBlockedConsumer) {
  // Blocking Pop consumers parked on an empty queue: Close must wake all
  // of them into the nullopt exit, and items pushed before Close must
  // each land in exactly one consumer.
  BoundedQueue<int> queue(8, kind());
  std::atomic<int> received{0};
  std::atomic<int> exited{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        received.fetch_add(1, std::memory_order_relaxed);
      }
      exited.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(10ms);  // let consumers park
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(queue.Push(i));
  }
  std::this_thread::sleep_for(10ms);
  queue.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.load(), 3);
  EXPECT_EQ(exited.load(), 4);
}

TEST_P(BoundedQueueTest, DepthConsistentUnderRacingPushPop) {
  BoundedQueue<int> queue(32, kind());
  std::atomic<bool> stop{false};
  // A racing reader hammers the relaxed depth like the scheduler scan
  // does; under TSan this is the no-data-race proof, and the bound check
  // pins that the counter never drifts past the logical capacity — for
  // the lock-free queue that is the CAS-admission guarantee (no
  // overshoot-and-correct window), for the mutex queue the under-lock
  // republish.
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_LE(queue.DepthRelaxed(), queue.capacity());
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        int v = i;
        queue.TryPush(v);
      }
    });
    workers.emplace_back([&] {
      std::vector<int> out;
      for (int i = 0; i < 5000; ++i) {
        out.clear();
        queue.TryPopBatch(out, 4, 0us);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scanner.join();
  // Quiesced: the published depth must equal the exact size.
  EXPECT_EQ(queue.DepthRelaxed(), queue.size());
}

}  // namespace
}  // namespace milr::runtime
