// BoundedQueue edge cases that became load-bearing with the shared worker
// pool: TryPopBatch racing Close, Reopen after a drain, and the lock-free
// depth counter's consistency under racing push/pop (the scheduler's
// backlog scan reads it without the queue mutex). Runs under TSan in CI.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/request_queue.h"

namespace milr::runtime {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueueTest, TryPopBatchEmptyReturnsImmediatelyOpenOrClosed) {
  BoundedQueue<int> queue(8);
  std::vector<int> out;
  // Open + empty: no linger may be paid (a granted worker must never park
  // on an empty queue).
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.TryPopBatch(out, 4, 200ms), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 100ms);
  queue.Close();
  EXPECT_EQ(queue.TryPopBatch(out, 4, 200ms), 0u);
}

TEST(BoundedQueueTest, ClosedQueueDrainsBacklogWithoutLinger) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(queue.TryPush(v));
  }
  queue.Close();
  std::vector<int> out;
  // Closed-with-backlog still drains, in whatever bites the backlog
  // provides, and never lingers for a fuller batch.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.TryPopBatch(out, 3, 500ms), 3u);
  EXPECT_EQ(queue.TryPopBatch(out, 3, 500ms), 2u);
  EXPECT_EQ(queue.TryPopBatch(out, 3, 500ms), 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 400ms);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
}

TEST(BoundedQueueTest, LingerFillsBatchFromLateArrivals) {
  BoundedQueue<int> queue(8);
  int v = 0;
  ASSERT_TRUE(queue.TryPush(v));
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    for (int i = 1; i < 4; ++i) {
      int item = i;
      queue.TryPush(item);
    }
  });
  std::vector<int> out;
  // One item is ready; the linger window must pick up the other three.
  EXPECT_EQ(queue.TryPopBatch(out, 4, 2000ms), 4u);
  producer.join();
}

TEST(BoundedQueueTest, CloseWakesLingeringConsumer) {
  BoundedQueue<int> queue(8);
  int v = 0;
  ASSERT_TRUE(queue.TryPush(v));
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    queue.Close();
  });
  std::vector<int> out;
  const auto start = std::chrono::steady_clock::now();
  // The consumer holds a partial batch inside a long linger; Close must
  // cut the wait short instead of letting shutdown eat the full window.
  EXPECT_EQ(queue.TryPopBatch(out, 4, 5000ms), 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2500ms);
  closer.join();
}

TEST(BoundedQueueTest, ReopenAfterDrainRestoresAdmissionAndDepth) {
  BoundedQueue<int> queue(4);
  int v = 1;
  ASSERT_TRUE(queue.TryPush(v));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(v));
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(out, 4, 0us), 1u);  // drain the backlog
  EXPECT_EQ(queue.DepthRelaxed(), 0u);

  queue.Reopen();
  EXPECT_FALSE(queue.closed());
  v = 2;
  EXPECT_TRUE(queue.TryPush(v));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.DepthRelaxed(), 2u);
  EXPECT_EQ(queue.size(), 2u);
  auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 2);
  EXPECT_EQ(queue.DepthRelaxed(), 1u);
}

TEST(BoundedQueueTest, DepthTracksSizeThroughEveryMutation) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(queue.Push(i));
    EXPECT_EQ(queue.DepthRelaxed(), queue.size());
  }
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(out, 4, 0us), 4u);
  EXPECT_EQ(queue.DepthRelaxed(), 2u);
  (void)queue.Pop();
  EXPECT_EQ(queue.DepthRelaxed(), 1u);
}

TEST(BoundedQueueTest, TryPopBatchRacingCloseLosesNoItems) {
  // Producers block in Push until Close bounces them; consumers drain
  // with TryPopBatch through the closure. Every admitted item must come
  // out exactly once — the Stop() drain guarantee the pool relies on.
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> queue(16);
    std::atomic<int> admitted{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < 3; ++t) {
      producers.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          if (!queue.Push(t * 1000 + i)) break;  // closed: stop producing
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::vector<std::thread> consumers;
    for (int t = 0; t < 2; ++t) {
      consumers.emplace_back([&] {
        std::vector<int> out;
        for (;;) {
          out.clear();
          const std::size_t n = queue.TryPopBatch(out, 8, 100us);
          popped.fetch_add(static_cast<int>(n),
                           std::memory_order_relaxed);
          if (n == 0 && queue.closed()) return;  // closed AND drained
          if (n == 0) std::this_thread::yield();
        }
      });
    }
    std::this_thread::sleep_for(1ms);
    queue.Close();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(popped.load(), admitted.load()) << "round " << round;
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.DepthRelaxed(), 0u);
  }
}

TEST(BoundedQueueTest, DepthConsistentUnderRacingPushPop) {
  BoundedQueue<int> queue(32);
  std::atomic<bool> stop{false};
  // A racing reader hammers the relaxed depth like the scheduler scan
  // does; under TSan this is the no-data-race proof, and the bound check
  // pins that the counter never drifts past what the deque could hold.
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_LE(queue.DepthRelaxed(), queue.capacity());
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        int v = i;
        queue.TryPush(v);
      }
    });
    workers.emplace_back([&] {
      std::vector<int> out;
      for (int i = 0; i < 5000; ++i) {
        out.clear();
        queue.TryPopBatch(out, 4, 0us);
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scanner.join();
  // Quiesced: the published depth must equal the exact size.
  EXPECT_EQ(queue.DepthRelaxed(), queue.size());
}

}  // namespace
}  // namespace milr::runtime
