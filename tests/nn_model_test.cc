#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "apps/networks.h"
#include "nn/init.h"
#include "nn/model.h"
#include "nn/serialize.h"
#include "support/prng.h"

namespace milr::nn {
namespace {

Model SmallModel() {
  Model model(Shape{8, 8, 1});
  model.AddConv(3, 4, Padding::kValid).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddFlatten();
  model.AddDense(5).AddBias();
  return model;
}

TEST(ModelTest, ShapesPropagate) {
  Model model = SmallModel();
  EXPECT_EQ(model.ShapeAt(0), Shape({8, 8, 1}));
  EXPECT_EQ(model.ShapeAt(1), Shape({6, 6, 4}));  // after conv
  EXPECT_EQ(model.ShapeAt(4), Shape({3, 3, 4}));  // after pool
  EXPECT_EQ(model.ShapeAt(5), Shape({36}));       // after flatten
  EXPECT_EQ(model.output_shape(), Shape({5}));
}

TEST(ModelTest, LayerNamesAreStable) {
  Model model = SmallModel();
  EXPECT_EQ(model.layer(0).name(), "conv2d_0");
  EXPECT_EQ(model.layer(1).name(), "bias_1");
  EXPECT_EQ(model.layer(5).name(), "dense_5");
}

TEST(ModelTest, ForwardCollectMatchesPredict) {
  Model model = SmallModel();
  InitHeUniform(model, 1);
  Prng prng(2);
  const Tensor x = RandomTensor(model.input_shape(), prng);
  const auto activations = model.ForwardCollect(x);
  ASSERT_EQ(activations.size(), model.LayerCount() + 1);
  EXPECT_EQ(MaxAbsDiff(activations.back(), model.Predict(x)), 0.0f);
}

TEST(ModelTest, TotalParamsMatchesSum) {
  Model model = SmallModel();
  // conv 3*3*1*4=36, bias 4, dense 36*5=180, bias 5.
  EXPECT_EQ(model.TotalParams(), 36u + 4u + 180u + 5u);
  EXPECT_EQ(model.TotalParamBytes(), 4u * (36 + 4 + 180 + 5));
}

TEST(ModelTest, SnapshotRestoreRoundTrip) {
  Model model = SmallModel();
  InitHeUniform(model, 3);
  const auto snapshot = model.SnapshotParams();
  model.layer(0).Params()[0] += 42.0f;
  model.RestoreParams(snapshot);
  Prng prng(4);
  const Tensor x = RandomTensor(model.input_shape(), prng);
  Model fresh = SmallModel();
  InitHeUniform(fresh, 3);
  EXPECT_EQ(MaxAbsDiff(model.Predict(x), fresh.Predict(x)), 0.0f);
}

TEST(ModelTest, AddDenseRequiresFlatten) {
  Model model(Shape{4, 4, 1});
  EXPECT_THROW(model.AddDense(3), std::invalid_argument);
}

TEST(ModelTest, ClassifyReturnsArgmax) {
  Model model(Shape{3});
  model.AddDense(3);
  auto& dense = static_cast<DenseLayer&>(model.layer(0));
  dense.weights() = Tensor(Shape{3, 3}, {0, 0, 1, 0, 0, 1, 0, 0, 1});
  const Tensor x(Shape{3}, {1.0f, 1.0f, 1.0f});
  EXPECT_EQ(model.Classify(x), 2u);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/milr_serialize_test.weights";
  Model model = SmallModel();
  InitHeUniform(model, 5);
  ASSERT_TRUE(SaveParams(model, path).ok());

  Model loaded = SmallModel();
  InitHeUniform(loaded, 99);  // different init, then overwrite from disk
  ASSERT_TRUE(LoadParams(loaded, path).ok());

  Prng prng(6);
  const Tensor x = RandomTensor(model.input_shape(), prng);
  EXPECT_EQ(MaxAbsDiff(model.Predict(x), loaded.Predict(x)), 0.0f);
  std::filesystem::remove(path);
}

TEST(SerializeTest, LoadRejectsWrongArchitecture) {
  const std::string path = "/tmp/milr_serialize_mismatch.weights";
  Model model = SmallModel();
  InitHeUniform(model, 7);
  ASSERT_TRUE(SaveParams(model, path).ok());

  Model other(Shape{8, 8, 1});
  other.AddFlatten();
  other.AddDense(3);
  EXPECT_FALSE(LoadParams(other, path).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, LoadMissingFileFails) {
  Model model = SmallModel();
  const auto status = LoadParams(model, "/tmp/does_not_exist.weights");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

// --------------------------------------------------- paper architectures

TEST(PaperNetworks, MnistMatchesTableI) {
  const Model model = apps::BuildMnistNetwork();
  // Output shapes from Table I.
  EXPECT_EQ(model.ShapeAt(1), Shape({26, 26, 32}));
  EXPECT_EQ(model.ShapeAt(4), Shape({24, 24, 32}));
  EXPECT_EQ(model.ShapeAt(7), Shape({12, 12, 32}));
  EXPECT_EQ(model.ShapeAt(10), Shape({10, 10, 64}));
  EXPECT_EQ(model.output_shape(), Shape({10}));
  // Trainable parameter counts (conv+bias pairs as the table groups them).
  EXPECT_EQ(model.layer(0).ParamCount() + model.layer(1).ParamCount(), 320u);
  EXPECT_EQ(model.layer(3).ParamCount() + model.layer(4).ParamCount(), 9248u);
  EXPECT_EQ(model.layer(7).ParamCount() + model.layer(8).ParamCount(),
            18496u);
  EXPECT_EQ(model.layer(11).ParamCount() + model.layer(12).ParamCount(),
            1638656u);
  EXPECT_EQ(model.layer(14).ParamCount() + model.layer(15).ParamCount(),
            2570u);
}

TEST(PaperNetworks, CifarSmallMatchesTableII) {
  const Model model = apps::BuildCifarSmallNetwork();
  EXPECT_EQ(model.ShapeAt(1), Shape({32, 32, 32}));
  std::size_t total = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    total += model.layer(i).ParamCount();
  }
  // Sum of the Trainable column of Table II.
  EXPECT_EQ(total, 896u + 9248 + 18496 + 36928 + 73856 + 147584 + 147584 +
                       262272 + 1290);
}

TEST(PaperNetworks, CifarLargeMatchesTableIII) {
  const Model model = apps::BuildCifarLargeNetwork();
  std::size_t total = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    total += model.layer(i).ParamCount();
  }
  EXPECT_EQ(total, 7296u + 230496 + 192080 + 128064 + 102464 + 153696 +
                       1573120 + 2570);
}

}  // namespace
}  // namespace milr::nn
