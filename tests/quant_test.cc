// Unit tests for the int8 quantized serving tier (src/quant/) and its
// DenseLayer integration: numerics of the quantizer, the packed layout,
// AVX2-vs-generic bit-equality, error bounds against the fp32 oracle,
// cache invalidation, and end-to-end top-1 agreement on a serving-sized
// net.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/model.h"
#include "quant/gemm_int8.h"
#include "quant/quantize.h"
#include "support/prng.h"
#include "tensor/tensor.h"

namespace milr::quant {
namespace {

std::vector<float> RandomMatrix(std::size_t rows, std::size_t cols,
                                Prng& prng, float lo = -1.0f,
                                float hi = 1.0f) {
  std::vector<float> m(rows * cols);
  for (float& v : m) v = prng.NextFloat(lo, hi);
  return m;
}

// ------------------------------------------------------------- quantizer

TEST(QuantizeWeights, RoundTripErrorBoundedByHalfScale) {
  Prng prng(7);
  const std::size_t k = 37, n = 19;
  const auto w = RandomMatrix(k, n, prng, -3.0f, 3.0f);
  const QuantizedWeights q = QuantizeWeights(w.data(), k, n);
  std::vector<float> back(k * n);
  DequantizeWeights(q, back.data());
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < k; ++p) {
      EXPECT_NEAR(back[p * n + j], w[p * n + j], q.scales[j] * 0.5f + 1e-7f)
          << "p=" << p << " j=" << j;
    }
  }
}

TEST(QuantizeWeights, SymmetricSaturationAtMaxabs) {
  // Column 0 spans [-4, 4]; the maxabs elements must land exactly on
  // +/-kWeightQuantMax and nothing may exceed it.
  const std::size_t k = 4, n = 1;
  const float w[] = {4.0f, -4.0f, 2.0f, -0.5f};
  const QuantizedWeights q = QuantizeWeights(w, k, n);
  EXPECT_FLOAT_EQ(q.scales[0], 4.0f / 127.0f);
  EXPECT_EQ(q.values[0], 127);
  EXPECT_EQ(q.values[1], -127);
  for (std::size_t p = 0; p < k; ++p) {
    EXPECT_LE(std::abs(static_cast<int>(q.values[p])), kWeightQuantMax);
  }
}

TEST(QuantizeWeights, NonFiniteWeightsQuantizeToZeroAndKeepScaleSane) {
  // The Inf/NaN weights map to 0 and must not poison the column scale:
  // the finite 1.0 still quantizes to full range.
  const std::size_t k = 3, n = 1;
  const float w[] = {std::numeric_limits<float>::infinity(),
                     std::numeric_limits<float>::quiet_NaN(), 1.0f};
  const QuantizedWeights q = QuantizeWeights(w, k, n);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f / 127.0f);
  EXPECT_EQ(q.values[0], 0);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
}

TEST(QuantizeWeights, AllZeroColumnGetsUnitScale) {
  const std::size_t k = 2, n = 2;
  const float w[] = {0.0f, 1.0f, 0.0f, -1.0f};
  const QuantizedWeights q = QuantizeWeights(w, k, n);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f);
  EXPECT_EQ(q.values[0], 0);
  EXPECT_EQ(q.values[2], 0);
}

TEST(QuantizeActivationRow, SymmetricTwelveBitRoundTrip) {
  const std::size_t k = 5;
  const float a[] = {-2.0f, 0.0f, 1.0f, 3.0f, -0.5f};
  std::int16_t out[5];
  const float scale = QuantizeActivationRow(a, k, out);
  EXPECT_FLOAT_EQ(scale, 3.0f / 2047.0f);
  for (std::size_t p = 0; p < k; ++p) {
    EXPECT_LE(std::abs(static_cast<int>(out[p])), kActivationQuantMax);
    EXPECT_NEAR(scale * static_cast<float>(out[p]), a[p],
                scale * 0.5f + 1e-7f);
  }
  // Zero is exactly representable by symmetry.
  EXPECT_EQ(out[1], 0);
}

TEST(QuantizeActivationRow, ConstantAndNonFiniteRows) {
  std::int16_t out[3];
  const float zeros[] = {0.0f, 0.0f, 0.0f};
  float scale = QuantizeActivationRow(zeros, 3, out);
  EXPECT_FLOAT_EQ(scale, 1.0f);
  EXPECT_EQ(out[0], 0);

  const float bad[] = {std::numeric_limits<float>::quiet_NaN(), 2.0f,
                       -std::numeric_limits<float>::infinity()};
  scale = QuantizeActivationRow(bad, 3, out);
  // Non-finite values dequantize to 0; the finite 2.0 uses the range.
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[2], 0);
  EXPECT_NEAR(scale * static_cast<float>(out[1]), 2.0f,
              scale * 0.5f + 1e-6f);
}

// ----------------------------------------------------------- packed GEMM

/// Straight dequant reference: C += dequant(A) * dequant(B) done in
/// double, computed from the QUANTIZED operands — the exact answer the
/// integer pipeline must reproduce (up to the fp32 epilogue rounding).
std::vector<double> DequantReference(const std::vector<std::int16_t>& aq,
                                     std::size_t astride,
                                     const std::vector<float>& row_scales,
                                     const QuantizedWeights& q,
                                     std::size_t m) {
  std::vector<double> c(m * q.n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < q.n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < q.k; ++p) {
        acc += static_cast<double>(aq[i * astride + p]) *
               static_cast<double>(q.values[p * q.n + j]);
      }
      c[i * q.n + j] = static_cast<double>(row_scales[i]) *
                       static_cast<double>(q.scales[j]) * acc;
    }
  }
  return c;
}

struct QuantizedGemmInputs {
  std::vector<std::int16_t> aq;
  std::vector<float> row_scales;
  std::size_t astride = 0;
  QuantizedWeights qw;
  std::vector<std::int8_t> bpack;
};

QuantizedGemmInputs MakeInputs(const std::vector<float>& a,
                               const std::vector<float>& b, std::size_t m,
                               std::size_t k, std::size_t n) {
  QuantizedGemmInputs in;
  in.astride = Int8PaddedDepth(k);
  in.aq.assign(m * in.astride, 0);
  in.row_scales.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    in.row_scales[i] = QuantizeActivationRow(
        a.data() + i * k, k, in.aq.data() + i * in.astride);
  }
  in.qw = QuantizeWeights(b.data(), k, n);
  in.bpack.resize(PackedInt8BSize(k, n));
  PackInt8BPanels(in.qw.values.data(), k, n, in.bpack.data());
  return in;
}

TEST(GemmInt8, MatchesDequantReferenceAcrossShapes) {
  Prng prng(11);
  // Odd shapes exercise every tail: k % 2, n % 16, m % 4.
  const struct { std::size_t m, k, n; } shapes[] = {
      {1, 8, 16}, {3, 7, 5}, {4, 64, 32}, {5, 33, 17},
      {8, 256, 48}, {13, 130, 94},
  };
  for (const auto& s : shapes) {
    const auto a = RandomMatrix(s.m, s.k, prng, -2.0f, 2.0f);
    const auto b = RandomMatrix(s.k, s.n, prng, -1.5f, 1.5f);
    const auto in = MakeInputs(a, b, s.m, s.k, s.n);
    std::vector<float> c(s.m * s.n, 0.0f);
    GemmInt8Dequant(in.aq.data(), in.astride, in.row_scales.data(),
                    in.bpack.data(), in.qw.scales.data(), c.data(), s.m,
                    s.k, s.n);
    const auto ref =
        DequantReference(in.aq, in.astride, in.row_scales, in.qw, s.m);
    for (std::size_t i = 0; i < s.m * s.n; ++i) {
      // The integer pipeline is exact; only the fp32 epilogue rounds.
      EXPECT_NEAR(c[i], ref[i], 1e-4 + 1e-5 * std::fabs(ref[i]))
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " i=" << i;
    }
  }
}

TEST(GemmInt8, DispatchIsBitIdenticalToGenericKernel) {
  Prng prng(23);
  const std::size_t m = 9, k = 77, n = 41;
  const auto a = RandomMatrix(m, k, prng);
  const auto b = RandomMatrix(k, n, prng);
  const auto in = MakeInputs(a, b, m, k, n);
  std::vector<float> dispatched(m * n, 0.0f), generic(m * n, 0.0f);
  GemmInt8Dequant(in.aq.data(), in.astride, in.row_scales.data(),
                  in.bpack.data(), in.qw.scales.data(), dispatched.data(),
                  m, k, n);
  GemmInt8DequantGeneric(in.aq.data(), in.astride, in.row_scales.data(),
                         in.bpack.data(), in.qw.scales.data(),
                         generic.data(), m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    // Exact equality: integer accumulation is order-independent and the
    // float epilogue is the same expression in both kernels. This is the
    // tier's dispatch-invariance contract, not a tolerance check.
    EXPECT_EQ(dispatched[i], generic[i]) << "i=" << i;
  }
}

TEST(GemmInt8, AccumulatesIntoC) {
  Prng prng(31);
  const std::size_t m = 2, k = 16, n = 16;
  const auto a = RandomMatrix(m, k, prng);
  const auto b = RandomMatrix(k, n, prng);
  const auto in = MakeInputs(a, b, m, k, n);
  std::vector<float> once(m * n, 1.0f), zero(m * n, 0.0f);
  GemmInt8Dequant(in.aq.data(), in.astride, in.row_scales.data(),
                  in.bpack.data(), in.qw.scales.data(), once.data(), m, k,
                  n);
  GemmInt8Dequant(in.aq.data(), in.astride, in.row_scales.data(),
                  in.bpack.data(), in.qw.scales.data(), zero.data(), m, k,
                  n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_FLOAT_EQ(once[i], zero[i] + 1.0f);
  }
}

TEST(GemmInt8, ExtremeOperandsStayExact) {
  // Worst-case magnitudes: every activation at +/-maxabs (quantizes to
  // +/-2047), weights alternating +/-127, k near the depth bound's shape
  // in this repo. The AVX2 madd path must agree bit-for-bit with the
  // (unconditionally exact) generic kernel — there is no saturating step
  // anywhere in the pipeline.
  const std::size_t m = 4, k = 1536, n = 16;
  std::vector<float> a(m * k);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = (i % 2 == 0) ? 100.0f : -100.0f;
  }
  std::vector<float> b(k * n);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      b[p * n + j] = (p % 2 == 0) ? 4.0f : -4.0f;
    }
  }
  const auto in = MakeInputs(a, b, m, k, n);
  std::vector<float> dispatched(m * n, 0.0f), generic(m * n, 0.0f);
  GemmInt8Dequant(in.aq.data(), in.astride, in.row_scales.data(),
                  in.bpack.data(), in.qw.scales.data(), dispatched.data(),
                  m, k, n);
  GemmInt8DequantGeneric(in.aq.data(), in.astride, in.row_scales.data(),
                         in.bpack.data(), in.qw.scales.data(),
                         generic.data(), m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_EQ(dispatched[i], generic[i]) << "i=" << i;
  }
}

// --------------------------------------------------- DenseLayer int8 tier

TEST(DenseInt8, ForwardBatchMatchesExactWithinQuantTolerance) {
  Prng prng(3);
  const std::size_t k = 64, n = 48, rows = 6;
  nn::DenseLayer layer(k, n);
  auto w = RandomMatrix(k, n, prng);
  std::copy(w.begin(), w.end(), layer.Params().begin());
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  EXPECT_TRUE(layer.int8_weights_valid());

  Tensor batch(Shape{rows, k});
  for (auto& v : batch.flat()) v = prng.NextFloat(-1.0f, 1.0f);
  const Tensor got = layer.ForwardBatch(batch);

  layer.set_kernel_config(nn::KernelConfig::kExact);
  const Tensor want = layer.ForwardBatch(batch);
  // Analytic quantization error bound per output (i, j): each operand
  // rounds by at most half a step, so
  //   |err| <= sa/2 * sum_p|w[p][j]| + sw[j]/2 * sum_p|a[i][p]|
  //            + k * sa/2 * sw[j]/2
  // with sa = the row's activation step and sw[j] the column's weight
  // step. Tighter than any hand-picked constant and still fails on a real
  // kernel bug (which breaks by whole quantization steps, not halves).
  std::vector<float> col_abs(n, 0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      col_abs[j] += std::fabs(w[p * n + j]);
    }
  }
  const QuantizedWeights qw = QuantizeWeights(w.data(), k, n);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::int16_t> scratch(Int8PaddedDepth(k));
    const float sa =
        QuantizeActivationRow(batch.data() + i * k, k, scratch.data());
    float row_abs = 0.0f;
    for (std::size_t p = 0; p < k; ++p) {
      row_abs += std::fabs(batch[i * k + p]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      const float bound = 0.5f * sa * col_abs[j] +
                          0.5f * qw.scales[j] * row_abs +
                          0.25f * k * sa * qw.scales[j] + 1e-5f;
      EXPECT_NEAR(got[i * n + j], want[i * n + j], bound)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(DenseInt8, PerSampleForwardStaysExactUnderInt8Config) {
  Prng prng(5);
  nn::DenseLayer layer(32, 16);
  auto w = RandomMatrix(32, 16, prng);
  std::copy(w.begin(), w.end(), layer.Params().begin());

  Tensor x(Shape{32});
  for (auto& v : x.flat()) v = prng.NextFloat(-1.0f, 1.0f);
  const Tensor exact = layer.Forward(x);
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  const Tensor still_exact = layer.Forward(x);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    // MILR's init/detect/recover contract: per-sample Forward is
    // bit-identical no matter the serving tier.
    EXPECT_EQ(exact[i], still_exact[i]);
  }
}

TEST(DenseInt8, MutationInvalidatesAndRequantizes) {
  Prng prng(9);
  nn::DenseLayer layer(16, 16);
  auto w = RandomMatrix(16, 16, prng);
  std::copy(w.begin(), w.end(), layer.Params().begin());
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  ASSERT_TRUE(layer.int8_weights_valid());

  Tensor x(Shape{2, 16});
  for (auto& v : x.flat()) v = prng.NextFloat(-1.0f, 1.0f);
  const Tensor before = layer.ForwardBatch(x);

  // Mutate through the fault-domain span: the cache must invalidate and
  // the next serve must requantize from the new weights.
  layer.Params()[0] += 2.0f;
  EXPECT_FALSE(layer.int8_weights_valid());
  const Tensor after = layer.ForwardBatch(x);
  EXPECT_TRUE(layer.int8_weights_valid());
  EXPECT_NE(before[0], after[0]);

  // And weights() invalidates too (the other mutable accessor).
  layer.weights();
  EXPECT_FALSE(layer.int8_weights_valid());
}

TEST(DenseInt8, DeterministicAcrossBatchSplits) {
  // Bit-stability across row blocking: serving the same sample alone or
  // inside a large batch must produce identical floats (integer
  // accumulation + fixed-order epilogue). The fp32 fast tier cannot make
  // this promise; the int8 tier's requantization test relies on it.
  Prng prng(13);
  nn::DenseLayer layer(96, 32);
  auto w = RandomMatrix(96, 32, prng);
  std::copy(w.begin(), w.end(), layer.Params().begin());
  layer.set_kernel_config(nn::KernelConfig::kInt8);

  const std::size_t big = 48;  // crosses the rows>=32 ParallelFor path
  Tensor batch(Shape{big, 96});
  for (auto& v : batch.flat()) v = prng.NextFloat(-2.0f, 2.0f);
  const Tensor all = layer.ForwardBatch(batch);
  for (std::size_t s : {std::size_t{0}, std::size_t{17}, big - 1}) {
    Tensor one(Shape{1, 96});
    std::copy_n(batch.data() + s * 96, 96, one.data());
    const Tensor single = layer.ForwardBatch(one);
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(single[j], all[s * 32 + j]) << "s=" << s << " j=" << j;
    }
  }
}

// -------------------------------------------------- Conv2DLayer int8 tier

/// Random filters through Params() — the same fault-domain span every
/// other writer uses. (Conv2DLayer owns a mutex, so no factory-by-value.)
void FillConv(nn::Conv2DLayer& layer, Prng& prng) {
  for (float& v : layer.Params()) v = prng.NextFloat(-1.0f, 1.0f);
}

/// The conv int8 oracle: per sample, im2col the input with the layer's own
/// BuildPatchMatrix, quantize each patch row exactly like the serving path
/// (12-bit per-row scales, padded int16 depth), and run the generic int8
/// GEMM against freshly quantized+packed filters. The serving path must
/// reproduce this BIT-FOR-BIT: integer accumulation is order-independent,
/// the epilogue is one expression, and dispatch (AVX2/VNNI/generic) is
/// bit-invariant by contract.
Tensor ConvInt8Oracle(const nn::Conv2DLayer& layer, const Tensor& batch) {
  const std::size_t b = batch.shape()[0];
  const std::size_t m_ext = batch.shape()[1];
  const std::size_t g = layer.OutputExtent(m_ext);
  const std::size_t plen = layer.PatchLength();
  const std::size_t y = layer.out_channels();
  const std::size_t astride = Int8PaddedDepth(plen);
  const std::size_t sample = m_ext * m_ext * layer.in_channels();

  const QuantizedWeights qw =
      QuantizeWeights(layer.filters().data(), plen, y);
  std::vector<std::int8_t> bpack(PackedInt8BSize(plen, y));
  PackInt8BPanels(qw.values.data(), plen, y, bpack.data());

  Tensor out(Shape{b, g, g, y});
  for (std::size_t s = 0; s < b; ++s) {
    Tensor one(Shape{m_ext, m_ext, layer.in_channels()});
    std::copy_n(batch.data() + s * sample, sample, one.data());
    const Tensor patches = layer.BuildPatchMatrix(one);
    const std::size_t rows = g * g;
    std::vector<std::int16_t> aq(rows * astride, 0);
    std::vector<float> row_scales(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      row_scales[r] = QuantizeActivationRow(patches.data() + r * plen,
                                            plen, aq.data() + r * astride);
    }
    GemmInt8DequantGeneric(aq.data(), astride, row_scales.data(),
                           bpack.data(), qw.scales.data(),
                           out.data() + s * rows * y, rows, plen, y);
  }
  return out;
}

TEST(ConvInt8, ForwardBatchMatchesDequantOracleBitExact) {
  Prng prng(41);
  // Edge cases by construction: kSame padding (zero patch cells), out
  // channels off the 16-wide panel (5, 17, 7), F=1 pointwise conv, and a
  // G=1 output (kValid with M == F) where one patch row IS the input.
  const struct {
    std::size_t f, z, y, m, b;
    nn::Padding pad;
  } cases[] = {
      {3, 3, 5, 6, 2, nn::Padding::kValid},
      {3, 2, 17, 5, 3, nn::Padding::kSame},
      {1, 5, 7, 4, 2, nn::Padding::kValid},
      {3, 4, 16, 3, 1, nn::Padding::kValid},
  };
  for (const auto& c : cases) {
    nn::Conv2DLayer layer(c.f, c.z, c.y, c.pad);
    FillConv(layer, prng);
    layer.set_kernel_config(nn::KernelConfig::kInt8);
    ASSERT_TRUE(layer.int8_filters_valid())
        << "f=" << c.f << " z=" << c.z << " y=" << c.y;
    Tensor batch(Shape{c.b, c.m, c.m, c.z});
    for (auto& v : batch.flat()) v = prng.NextFloat(-2.0f, 2.0f);
    const Tensor got = layer.ForwardBatch(batch);
    const Tensor want = ConvInt8Oracle(layer, batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << "f=" << c.f << " z=" << c.z << " y=" << c.y << " m=" << c.m
          << " pad=" << (c.pad == nn::Padding::kSame ? "same" : "valid")
          << " i=" << i;
    }
  }
}

TEST(ConvInt8, ForwardBatchMatchesExactWithinQuantTolerance) {
  // Sanity on the actual numbers (the oracle test would pass even if both
  // sides shared a scale bug): int8 conv output stays within quantization
  // distance of the exact fp32 tier.
  Prng prng(43);
  nn::Conv2DLayer layer(3, 4, 12, nn::Padding::kSame);
  FillConv(layer, prng);
  Tensor batch(Shape{2, 8, 8, 4});
  for (auto& v : batch.flat()) v = prng.NextFloat(-1.0f, 1.0f);
  const Tensor want = layer.ForwardBatch(batch);
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  const Tensor got = layer.ForwardBatch(batch);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 5e-2f) << "i=" << i;
  }
}

TEST(ConvInt8, PerSampleForwardStaysExactUnderInt8Config) {
  Prng prng(47);
  nn::Conv2DLayer layer(3, 2, 6, nn::Padding::kValid);
  FillConv(layer, prng);
  Tensor x(Shape{5, 5, 2});
  for (auto& v : x.flat()) v = prng.NextFloat(-1.0f, 1.0f);
  const Tensor exact = layer.Forward(x);
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  const Tensor still_exact = layer.Forward(x);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    // MILR's init/detect/recover contract holds for conv too: per-sample
    // Forward is bit-identical no matter the serving tier.
    EXPECT_EQ(exact[i], still_exact[i]);
  }
}

TEST(ConvInt8, MutationInvalidatesAndRequantizes) {
  Prng prng(53);
  nn::Conv2DLayer layer(3, 2, 8, nn::Padding::kValid);
  FillConv(layer, prng);
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  ASSERT_TRUE(layer.int8_filters_valid());

  Tensor x(Shape{2, 5, 5, 2});
  for (auto& v : x.flat()) v = prng.NextFloat(-1.0f, 1.0f);
  const Tensor before = layer.ForwardBatch(x);

  // Mutate through the fault-domain span: the packed panels must
  // invalidate and the next serve must requantize from the new filters.
  layer.Params()[0] += 2.0f;
  EXPECT_FALSE(layer.int8_filters_valid());
  const Tensor after = layer.ForwardBatch(x);
  EXPECT_TRUE(layer.int8_filters_valid());
  EXPECT_NE(before[0], after[0]);

  // And the mutable filters() accessor invalidates too.
  layer.filters();
  EXPECT_FALSE(layer.int8_filters_valid());
}

TEST(ConvInt8, StreamedAndMaterializedPathsAreBitIdentical) {
  // A 1-byte budget forces per-row-block streaming; 0 restores the
  // derived default (materialized here — the operand is tiny). Per-row
  // activation scales depend only on the row and integer accumulation is
  // order-independent, so the streamed GEMM must reproduce the
  // materialized bits exactly.
  Prng prng(59);
  nn::Conv2DLayer layer(3, 3, 10, nn::Padding::kSame);
  FillConv(layer, prng);
  layer.set_kernel_config(nn::KernelConfig::kInt8);
  Tensor batch(Shape{4, 7, 7, 3});
  for (auto& v : batch.flat()) v = prng.NextFloat(-2.0f, 2.0f);

  nn::SetPatchMatrixBudgetBytes(1);
  const Tensor streamed = layer.ForwardBatch(batch);
  nn::SetPatchMatrixBudgetBytes(0);
  const Tensor materialized = layer.ForwardBatch(batch);
  ASSERT_EQ(streamed.size(), materialized.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], materialized[i]) << "i=" << i;
  }
}

TEST(ConvInt8, TopOneAgreementOnConvNet) {
  // End-to-end acceptance proxy for the conv tier, mirroring the dense
  // MLP check: He-init conv net, random probes, int8 top-1 vs exact.
  using namespace milr;
  nn::Model model(Shape{10, 10, 3});
  model.AddConv(3, 24, nn::Padding::kSame).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddFlatten();
  model.AddDense(10).AddBias();
  nn::InitHeUniform(model, /*seed=*/17);

  Prng prng(61);
  const std::size_t samples = 200;
  Tensor batch(Shape{samples, 10, 10, 3});
  for (auto& v : batch.flat()) v = prng.NextFloat(-1.0f, 1.0f);

  model.set_kernel_config(nn::KernelConfig::kExact);
  const Tensor exact = model.PredictBatch(batch);
  model.set_kernel_config(nn::KernelConfig::kInt8);
  const Tensor int8 = model.PredictBatch(batch);

  std::size_t agree = 0;
  const std::size_t classes = 10;
  for (std::size_t s = 0; s < samples; ++s) {
    const float* e = exact.data() + s * classes;
    const float* q = int8.data() + s * classes;
    const std::size_t ce = std::max_element(e, e + classes) - e;
    const std::size_t cq = std::max_element(q, q + classes) - q;
    agree += (ce == cq) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) / samples, 0.99)
      << agree << "/" << samples << " top-1 agreement";
  model.set_kernel_config(nn::KernelConfig::kExact);
}

// --------------------------------------------- MILR_PATCH_BUDGET parsing

TEST(ParsePatchBudgetEnv, AcceptsPositiveByteCounts) {
  EXPECT_EQ(nn::ParsePatchBudgetEnv("1"), 1u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv("8388608"), 8388608u);
  // Leading whitespace and a trailing newline (common in shell exports)
  // are fine; the digits still parse unambiguously.
  EXPECT_EQ(nn::ParsePatchBudgetEnv("  4096"), 4096u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv("4096\n"), 4096u);
}

TEST(ParsePatchBudgetEnv, RejectsZeroNegativeAndGarbage) {
  // 0 is the sentinel for "invalid, use the derived default" — a zero
  // budget would force 1-row streaming forever, so it is rejected too.
  EXPECT_EQ(nn::ParsePatchBudgetEnv("0"), 0u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv("-4096"), 0u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv("banana"), 0u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv("4096MB"), 0u);  // trailing garbage
  EXPECT_EQ(nn::ParsePatchBudgetEnv("40 96"), 0u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv(""), 0u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv(nullptr), 0u);
  EXPECT_EQ(nn::ParsePatchBudgetEnv("999999999999999999999999"), 0u);
}

TEST(DenseInt8, TopOneAgreementOnServingNet) {
  // End-to-end acceptance proxy: the bench nets' int8 top-1 must track
  // exact >= 99%. A dense MLP with He-init weights and random probes is
  // the adversarial case (no trained margins).
  using namespace milr;
  nn::Model model(Shape{256});
  model.AddDense(320).AddBias().AddReLU();
  model.AddDense(320).AddBias().AddReLU();
  model.AddDense(256).AddBias().AddReLU();
  model.AddDense(10).AddBias();
  nn::InitHeUniform(model, /*seed=*/11);

  Prng prng(29);
  const std::size_t samples = 300;
  Tensor batch(Shape{samples, 256});
  for (auto& v : batch.flat()) v = prng.NextFloat(-1.0f, 1.0f);

  model.set_kernel_config(nn::KernelConfig::kExact);
  const Tensor exact = model.PredictBatch(batch);
  model.set_kernel_config(nn::KernelConfig::kInt8);
  const Tensor int8 = model.PredictBatch(batch);

  std::size_t agree = 0;
  const std::size_t classes = 10;
  for (std::size_t s = 0; s < samples; ++s) {
    const float* e = exact.data() + s * classes;
    const float* q = int8.data() + s * classes;
    const std::size_t ce = std::max_element(e, e + classes) - e;
    const std::size_t cq = std::max_element(q, q + classes) - q;
    agree += (ce == cq) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) / samples, 0.99)
      << agree << "/" << samples << " top-1 agreement";
  model.set_kernel_config(nn::KernelConfig::kExact);
}

}  // namespace
}  // namespace milr::quant
