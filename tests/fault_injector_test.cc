#include <gtest/gtest.h>

#include "memory/ecc_memory.h"
#include "memory/fault_injector.h"
#include "nn/init.h"
#include "support/bytes.h"

namespace milr::memory {
namespace {

nn::Model SmallModel() {
  nn::Model model(Shape{8, 8, 1});
  model.AddConv(3, 4, nn::Padding::kValid).AddBias().AddReLU();
  model.AddFlatten();
  model.AddDense(10).AddBias();
  nn::InitHeUniform(model, 1);
  return model;
}

TEST(InjectBitFlipsTest, ZeroRateFlipsNothing) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(1);
  const auto report = InjectBitFlips(model, 0.0, prng);
  EXPECT_EQ(report.flipped_bits, 0u);
  Prng prng2(2);
  model.RestoreParams(golden);  // no-op check passes if nothing changed
}

TEST(InjectBitFlipsTest, ZeroRateLeavesEveryBitUntouched) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(31);
  const auto report = InjectBitFlips(model, 0.0, prng);
  EXPECT_EQ(report.flipped_bits, 0u);
  EXPECT_EQ(report.corrupted_weights, 0u);
  EXPECT_TRUE(report.touched_layers.empty());
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      EXPECT_EQ(FloatBits(params[p]), FloatBits(golden[i][p]));
    }
  }
}

TEST(InjectBitFlipsTest, FullRateFlipsEveryBit) {
  // rber=1 must take the geometric fast path to every single bit: each
  // weight ends up with all 32 bits inverted.
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(32);
  const auto report = InjectBitFlips(model, 1.0, prng);
  EXPECT_EQ(report.flipped_bits, model.TotalParams() * 32);
  EXPECT_EQ(report.corrupted_weights, model.TotalParams());
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      EXPECT_EQ(FloatBitDistance(params[p], golden[i][p]), 32);
    }
  }
}

TEST(InjectBitFlipsTest, FullRateReportsAllParamLayersAscending) {
  nn::Model model = SmallModel();
  Prng prng(33);
  const auto report = InjectBitFlips(model, 1.0, prng);
  std::vector<std::size_t> expected;
  model.ForEachParamLayer(
      [&](std::size_t index, nn::Layer&) { expected.push_back(index); });
  EXPECT_EQ(report.touched_layers, expected);  // every layer, ascending
}

TEST(InjectWholeWeightTest, FullRateCorruptsEveryWeight) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(34);
  const auto report = InjectWholeWeightErrors(model, 1.0, prng);
  EXPECT_EQ(report.corrupted_weights, model.TotalParams());
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      EXPECT_EQ(FloatBitDistance(params[p], golden[i][p]), 32);
    }
  }
}

TEST(InjectWholeWeightTest, ZeroRateIsNoop) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(35);
  const auto report = InjectWholeWeightErrors(model, 0.0, prng);
  EXPECT_EQ(report.corrupted_weights, 0u);
  EXPECT_TRUE(report.touched_layers.empty());
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      EXPECT_EQ(FloatBits(params[p]), FloatBits(golden[i][p]));
    }
  }
}

TEST(InjectExactTest, TouchedLayersAscending) {
  nn::Model model = SmallModel();
  Prng prng(36);
  const auto report = InjectExactWeightErrors(model, 100, prng);
  ASSERT_FALSE(report.touched_layers.empty());
  for (std::size_t i = 1; i < report.touched_layers.size(); ++i) {
    EXPECT_LT(report.touched_layers[i - 1], report.touched_layers[i]);
  }
}

TEST(InjectBitFlipsTest, RateMatchesExpectation) {
  nn::Model model = SmallModel();
  const double rber = 1e-3;
  const std::size_t total_bits = model.TotalParams() * 32;
  std::size_t total_flips = 0;
  const int trials = 50;
  Prng prng(3);
  const auto golden = model.SnapshotParams();
  for (int t = 0; t < trials; ++t) {
    const auto report = InjectBitFlips(model, rber, prng);
    total_flips += report.flipped_bits;
    model.RestoreParams(golden);
  }
  const double expected = rber * static_cast<double>(total_bits) * trials;
  EXPECT_NEAR(static_cast<double>(total_flips), expected, expected * 0.25);
}

TEST(InjectBitFlipsTest, ReportsTouchedLayers) {
  nn::Model model = SmallModel();
  Prng prng(4);
  const auto report = InjectBitFlips(model, 0.05, prng);  // dense rate
  EXPECT_GT(report.flipped_bits, 0u);
  for (const auto layer : report.touched_layers) {
    EXPECT_GT(model.layer(layer).ParamCount(), 0u);
  }
  // Layers are ascending and unique.
  for (std::size_t i = 1; i < report.touched_layers.size(); ++i) {
    EXPECT_LT(report.touched_layers[i - 1], report.touched_layers[i]);
  }
}

TEST(InjectWholeWeightTest, FlipsAll32Bits) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(5);
  const auto report = InjectWholeWeightErrors(model, 0.05, prng);
  ASSERT_GT(report.corrupted_weights, 0u);
  EXPECT_EQ(report.flipped_bits, report.corrupted_weights * 32);
  // Every changed weight differs in all 32 bits.
  std::size_t changed = 0;
  std::size_t layer_idx = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      if (FloatBits(params[p]) != FloatBits(golden[i][p])) {
        EXPECT_EQ(FloatBitDistance(params[p], golden[i][p]), 32);
        ++changed;
      }
    }
    ++layer_idx;
  }
  EXPECT_EQ(changed, report.corrupted_weights);
}

TEST(CorruptWholeLayerTest, EveryWeightChanges) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  Prng prng(6);
  const auto report = CorruptWholeLayer(model, 5, prng);  // dense layer
  EXPECT_EQ(report.corrupted_weights, model.layer(5).ParamCount());
  auto params = model.layer(5).Params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    EXPECT_NE(params[p], golden[5][p]);
  }
  // Other layers untouched.
  auto conv_params = model.layer(0).Params();
  for (std::size_t p = 0; p < conv_params.size(); ++p) {
    EXPECT_EQ(conv_params[p], golden[0][p]);
  }
}

TEST(InjectExactTest, ExactCount) {
  nn::Model model = SmallModel();
  Prng prng(7);
  const auto report = InjectExactWeightErrors(model, 17, prng);
  EXPECT_EQ(report.corrupted_weights, 17u);
  EXPECT_EQ(report.flipped_bits, 17u * 32u);
}

TEST(InjectExactTest, CapsAtTotalWeights) {
  nn::Model model = SmallModel();
  Prng prng(8);
  const auto report = InjectExactWeightErrors(model, 1 << 20, prng);
  EXPECT_EQ(report.corrupted_weights, model.TotalParams());
}

// -------------------------------------------------------------- ECC memory

TEST(EccMemoryTest, CorrectsSingleBitFlips) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  EccProtectedModel ecc(model);
  // Flip one bit in a handful of distinct weights.
  auto params = model.layer(4).Params();
  params[0] = FlipFloatBit(params[0], 3);
  params[7] = FlipFloatBit(params[7], 31);
  params[13] = FlipFloatBit(params[13], 17);
  const auto report = ecc.Scrub();
  EXPECT_EQ(report.corrected, 3u);
  EXPECT_EQ(report.detected_uncorrectable, 0u);
  for (std::size_t p = 0; p < params.size(); ++p) {
    EXPECT_EQ(FloatBits(params[p]), FloatBits(golden[4][p]));
  }
}

TEST(EccMemoryTest, DetectsButCannotFixDoubleFlips) {
  nn::Model model = SmallModel();
  EccProtectedModel ecc(model);
  auto params = model.layer(4).Params();
  params[2] = FlipFloatBit(FlipFloatBit(params[2], 1), 20);
  const auto report = ecc.Scrub();
  EXPECT_EQ(report.corrected, 0u);
  EXPECT_EQ(report.detected_uncorrectable, 1u);
}

TEST(EccMemoryTest, WholeWeightErrorsSurviveScrub) {
  // The plaintext-space failure: all 32 bits flipped defeats SECDED.
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  EccProtectedModel ecc(model);
  auto params = model.layer(4).Params();
  params[4] = FloatFromBits(FloatBits(params[4]) ^ 0xffffffffu);
  ecc.Scrub();
  EXPECT_NE(FloatBits(params[4]), FloatBits(golden[4][4]));
}

TEST(EccMemoryTest, OverheadIs7BitsPerWord) {
  nn::Model model = SmallModel();
  EccProtectedModel ecc(model);
  EXPECT_EQ(ecc.WordCount(), model.TotalParams());
  EXPECT_EQ(ecc.OverheadBytes(), (model.TotalParams() * 7 + 7) / 8);
}

}  // namespace
}  // namespace milr::memory
