#include <gtest/gtest.h>

#include "milr/availability.h"

namespace milr::core {
namespace {

TEST(RecoveryTimeModelTest, FitsQuadraticExactly) {
  // y = 0.5 + 0.01 n + 1e-6 n².
  std::vector<double> errors = {0, 100, 500, 1000, 5000};
  std::vector<double> seconds;
  for (const double n : errors) {
    seconds.push_back(0.5 + 0.01 * n + 1e-6 * n * n);
  }
  const auto model = RecoveryTimeModel::Fit(errors, seconds);
  EXPECT_NEAR(model.base_seconds, 0.5, 1e-9);
  EXPECT_NEAR(model.per_error_seconds, 0.01, 1e-9);
  EXPECT_NEAR(model.per_error_sq_seconds, 1e-6, 1e-12);
  EXPECT_NEAR(model.Seconds(2000.0), 0.5 + 20.0 + 4.0, 1e-6);
}

TEST(RecoveryTimeModelTest, RejectsTooFewPoints) {
  EXPECT_THROW(RecoveryTimeModel::Fit({1, 2}, {1, 2}), std::invalid_argument);
}

TEST(ErrorsPerHourTest, MatchesPaperScaling) {
  // 1.67M params ≈ 53.4 Mbit; 75,000 FIT/Mbit → ≈ 4.0e-3 errors/hour.
  const double rate = ErrorsPerHour(1670000);
  EXPECT_NEAR(rate, 75000e-9 * 1670000 * 32.0 / 1e6, 1e-12);
  EXPECT_GT(rate, 3.5e-3);
  EXPECT_LT(rate, 4.5e-3);
}

AvailabilityParams TestParams() {
  AvailabilityParams params;
  params.detection_seconds = 0.02;
  params.detections_per_cycle = 2.0;
  params.time_between_errors_s = 3600.0 * 250;  // ~250h between errors
  params.recovery.base_seconds = 0.1;
  params.recovery.per_error_seconds = 0.05;
  params.accuracy_loss_per_error = 1e-4;
  return params;
}

TEST(AvailabilityCurveTest, MonotoneTradeoff) {
  const auto curve =
      AvailabilityAccuracyCurve(TestParams(), 60.0, 3.15e7, 64);
  ASSERT_EQ(curve.size(), 64u);
  // Longer cycles: availability weakly rises, minimum accuracy weakly falls.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].availability + 1e-12, curve[i - 1].availability);
    EXPECT_LE(curve[i].min_accuracy, curve[i - 1].min_accuracy + 1e-12);
  }
}

TEST(AvailabilityCurveTest, EndpointsBehave) {
  const auto curve =
      AvailabilityAccuracyCurve(TestParams(), 60.0, 3.15e7, 64);
  // A one-year cycle has essentially perfect availability.
  EXPECT_GT(curve.back().availability, 0.99999);
  // A one-minute cycle keeps accuracy essentially perfect.
  EXPECT_GT(curve.front().min_accuracy, 0.999999);
}

TEST(AvailabilityCurveTest, UserAAndUserBQueries) {
  const auto params = TestParams();
  const double avail =
      BestAvailabilityAtAccuracy(params, 0.99999, 60.0, 3.15e7);
  EXPECT_GT(avail, 0.9);
  const double acc = BestAccuracyAtAvailability(params, 0.999, 60.0, 3.15e7);
  EXPECT_GT(acc, 0.9);
  // Tightening one requirement cannot improve the other.
  EXPECT_LE(BestAvailabilityAtAccuracy(params, 0.999999, 60.0, 3.15e7),
            BestAvailabilityAtAccuracy(params, 0.99, 60.0, 3.15e7) + 1e-12);
}

TEST(AvailabilityCurveTest, RejectsBadRanges) {
  EXPECT_THROW(AvailabilityAccuracyCurve(TestParams(), 0.0, 10.0, 8),
               std::invalid_argument);
  EXPECT_THROW(AvailabilityAccuracyCurve(TestParams(), 10.0, 5.0, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace milr::core
