// Batched-vs-single equivalence: for every layer kind and for the paper's
// three evaluation topologies, ForwardBatch / PredictBatch must match the
// per-sample Forward / Predict results exactly (the batched paths are
// specified as bit-identical, not merely close — see nn/layer.h).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "apps/networks.h"
#include "nn/gemm.h"
#include "nn/init.h"
#include "nn/model.h"
#include "support/prng.h"

namespace milr::nn {
namespace {

Tensor Stack(const std::vector<Tensor>& samples) {
  const std::size_t stride = samples.front().size();
  Tensor batched(WithBatchAxis(samples.size(), samples.front().shape()));
  for (std::size_t s = 0; s < samples.size(); ++s) {
    std::copy_n(samples[s].data(), stride, batched.data() + s * stride);
  }
  return batched;
}

Tensor Slice(const Tensor& batched, std::size_t s, const Shape& sample) {
  const std::size_t stride = sample.NumElements();
  Tensor one(sample);
  std::copy_n(batched.data() + s * stride, stride, one.data());
  return one;
}

std::vector<Tensor> RandomSamples(const Shape& sample, std::size_t count,
                                  std::uint64_t seed) {
  Prng prng(seed);
  std::vector<Tensor> samples;
  for (std::size_t s = 0; s < count; ++s) {
    samples.push_back(RandomTensor(sample, prng));
  }
  return samples;
}

/// Asserts ForwardBatch(stack(samples)) == stack(Forward(sample)...) for
/// batch sizes 1 (the degenerate case) and a non-trivial odd size.
void ExpectBatchedMatchesSingle(const Layer& layer, const Shape& sample,
                                std::uint64_t seed) {
  for (const std::size_t batch : {std::size_t{1}, std::size_t{5}}) {
    const auto samples = RandomSamples(sample, batch, seed + batch);
    const Tensor batched_out = layer.ForwardBatch(Stack(samples));
    ASSERT_EQ(batched_out.shape(),
              layer.BatchOutputShape(WithBatchAxis(batch, sample)));
    const Shape sample_out = layer.OutputShape(sample);
    for (std::size_t s = 0; s < batch; ++s) {
      const Tensor single = layer.Forward(samples[s]);
      const Tensor slice = Slice(batched_out, s, sample_out);
      EXPECT_EQ(MaxAbsDiff(single, slice), 0.0f)
          << LayerKindName(layer.kind()) << " batch=" << batch
          << " sample=" << s;
    }
  }
}

void RandomizeParams(Layer& layer, std::uint64_t seed) {
  Prng prng(seed);
  for (auto& p : layer.Params()) p = prng.NextFloat(-1.0f, 1.0f);
}

// ------------------------------------------------ per-layer-kind coverage

TEST(BatchEquivalenceTest, Conv2DValidPadding) {
  Conv2DLayer conv(3, 3, 7, Padding::kValid);
  RandomizeParams(conv, 1);
  ExpectBatchedMatchesSingle(conv, Shape{9, 9, 3}, 10);
}

TEST(BatchEquivalenceTest, Conv2DSamePadding) {
  Conv2DLayer conv(5, 2, 4, Padding::kSame);
  RandomizeParams(conv, 2);
  ExpectBatchedMatchesSingle(conv, Shape{8, 8, 2}, 20);
}

TEST(BatchEquivalenceTest, Dense) {
  DenseLayer dense(37, 11);
  RandomizeParams(dense, 3);
  ExpectBatchedMatchesSingle(dense, Shape{37}, 30);
}

TEST(BatchEquivalenceTest, BiasOnConvActivations) {
  BiasLayer bias(5);
  RandomizeParams(bias, 4);
  ExpectBatchedMatchesSingle(bias, Shape{6, 6, 5}, 40);
}

TEST(BatchEquivalenceTest, BiasOnDenseActivations) {
  BiasLayer bias(13);
  RandomizeParams(bias, 5);
  ExpectBatchedMatchesSingle(bias, Shape{13}, 50);
}

TEST(BatchEquivalenceTest, ReLU) {
  ExpectBatchedMatchesSingle(ReLULayer(), Shape{4, 4, 3}, 60);
}

TEST(BatchEquivalenceTest, MaxPool) {
  ExpectBatchedMatchesSingle(MaxPool2DLayer(2), Shape{8, 8, 3}, 70);
}

TEST(BatchEquivalenceTest, AvgPool) {
  ExpectBatchedMatchesSingle(AvgPool2DLayer(2), Shape{6, 6, 2}, 80);
}

TEST(BatchEquivalenceTest, Flatten) {
  ExpectBatchedMatchesSingle(FlattenLayer(), Shape{3, 3, 4}, 90);
}

TEST(BatchEquivalenceTest, Dropout) {
  ExpectBatchedMatchesSingle(DropoutLayer(0.5f), Shape{5, 5, 2}, 100);
}

TEST(BatchEquivalenceTest, ZeroPad2D) {
  ExpectBatchedMatchesSingle(ZeroPad2DLayer(2), Shape{5, 5, 3}, 110);
}

TEST(BatchEquivalenceTest, DefaultPerSampleFallbackAgrees) {
  // A layer without a ForwardBatch override exercises Layer's default
  // per-sample loop; it must obey the same contract.
  class NegateLayer final : public Layer {
   public:
    LayerKind kind() const override { return LayerKind::kReLU; }
    Shape OutputShape(const Shape& input) const override { return input; }
    Tensor Forward(const Tensor& input) const override {
      Tensor out = input;
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = -out[i];
      return out;
    }
    Tensor Backward(const Tensor&, const Tensor&, const Tensor& dy,
                    std::span<float>) const override {
      return dy;
    }
  };
  ExpectBatchedMatchesSingle(NegateLayer(), Shape{4, 3, 2}, 120);
}

// ---------------------------------------------------- model-level coverage

void ExpectModelBatchMatchesPredict(const Model& model, std::size_t batch,
                                    std::uint64_t seed) {
  const auto samples = RandomSamples(model.input_shape(), batch, seed);
  // Direct per-layer chain: the pre-batching definition of Predict.
  std::vector<Tensor> singles;
  for (const auto& sample : samples) {
    Tensor current = sample;
    for (std::size_t i = 0; i < model.LayerCount(); ++i) {
      current = model.layer(i).Forward(current);
    }
    singles.push_back(std::move(current));
  }

  const Tensor batched_out = model.PredictBatch(Stack(samples));
  ASSERT_EQ(batched_out.shape(),
            WithBatchAxis(batch, model.output_shape()));
  for (std::size_t s = 0; s < batch; ++s) {
    EXPECT_EQ(MaxAbsDiff(Slice(batched_out, s, model.output_shape()),
                         singles[s]),
              0.0f)
        << "sample " << s << " of batch " << batch;
    // Predict must be exactly the B = 1 case.
    EXPECT_EQ(MaxAbsDiff(model.Predict(samples[s]), singles[s]), 0.0f);
  }

  // The stacking convenience overload returns the same per-sample tensors.
  const auto unpacked = model.PredictBatch(samples);
  ASSERT_EQ(unpacked.size(), batch);
  for (std::size_t s = 0; s < batch; ++s) {
    EXPECT_EQ(MaxAbsDiff(unpacked[s], singles[s]), 0.0f);
  }
}

TEST(BatchEquivalenceTest, MnistTopology) {
  Model model = apps::BuildMnistNetwork();
  InitHeUniform(model, 7);
  ExpectModelBatchMatchesPredict(model, 1, 200);
  ExpectModelBatchMatchesPredict(model, 3, 201);
}

TEST(BatchEquivalenceTest, CifarSmallTopology) {
  Model model = apps::BuildCifarSmallNetwork();
  InitHeUniform(model, 8);
  ExpectModelBatchMatchesPredict(model, 2, 300);
}

TEST(BatchEquivalenceTest, CifarLargeTopology) {
  Model model = apps::BuildCifarLargeNetwork();
  InitHeUniform(model, 9);
  ExpectModelBatchMatchesPredict(model, 2, 400);
}

// --------------------------------------------- streamed conv row blocks

// When the stacked patch matrix exceeds the cache-derived budget, conv's
// ForwardBatch streams the GEMM per row block instead of materializing
// the (B·G², F²Z) operand. Row blocks don't change per-row accumulation
// order, so the streamed result must stay bit-identical.
TEST(BatchEquivalenceTest, StreamedConvMatchesMaterializedBitExact) {
  Conv2DLayer conv(3, 2, 6, Padding::kSame);
  RandomizeParams(conv, 11);
  const Shape sample{12, 12, 2};
  const auto samples = RandomSamples(sample, 4, 130);
  const Tensor stacked = Stack(samples);

  const Tensor materialized = conv.ForwardBatch(stacked);
  SetPatchMatrixBudgetBytes(1);  // force streaming (floor keeps chunks sane)
  const Tensor streamed = conv.ForwardBatch(stacked);
  SetPatchMatrixBudgetBytes(0);  // restore the derived default
  EXPECT_EQ(MaxAbsDiff(streamed, materialized), 0.0f);
  // And both match the per-sample path.
  for (std::size_t s = 0; s < samples.size(); ++s) {
    EXPECT_EQ(MaxAbsDiff(Slice(streamed, s, conv.OutputShape(sample)),
                         conv.Forward(samples[s])),
              0.0f)
        << s;
  }
}

TEST(BatchEquivalenceTest, StreamedConvHonorsFastKernelWithinTolerance) {
  Conv2DLayer conv(3, 3, 8, Padding::kValid);
  RandomizeParams(conv, 12);
  const Shape sample{11, 11, 3};
  const auto samples = RandomSamples(sample, 3, 140);
  const Tensor stacked = Stack(samples);
  const Tensor exact = conv.ForwardBatch(stacked);

  conv.set_kernel_config(KernelConfig::kFast);
  SetPatchMatrixBudgetBytes(1);
  const Tensor fast_streamed = conv.ForwardBatch(stacked);
  SetPatchMatrixBudgetBytes(0);
  conv.set_kernel_config(KernelConfig::kExact);
  ASSERT_EQ(fast_streamed.shape(), exact.shape());
  EXPECT_TRUE(AllClose(fast_streamed, exact, 1e-4f))
      << "deviates by " << MaxAbsDiff(fast_streamed, exact);
}

// ------------------------------------------------- fast kernel config

// kFast rides only the batched path: per-sample Forward stays bit-exact
// (MILR's passes depend on it) while ForwardBatch/PredictBatch agree to a
// tolerance.
TEST(BatchEquivalenceTest, FastKernelConfigKeepsForwardExact) {
  DenseLayer dense(53, 17);
  RandomizeParams(dense, 13);
  const auto samples = RandomSamples(Shape{53}, 1, 150);
  const Tensor exact_out = dense.Forward(samples[0]);
  dense.set_kernel_config(KernelConfig::kFast);
  EXPECT_EQ(MaxAbsDiff(dense.Forward(samples[0]), exact_out), 0.0f)
      << "Forward must ignore the serving kernel tier";
}

TEST(BatchEquivalenceTest, FastModelPredictBatchWithinTolerance) {
  Model model = apps::BuildCifarSmallNetwork();
  InitHeUniform(model, 21);
  const auto samples = RandomSamples(model.input_shape(), 5, 160);
  const Tensor exact_out = model.PredictBatch(Stack(samples));

  model.set_kernel_config(KernelConfig::kFast);
  EXPECT_EQ(model.kernel_config(), KernelConfig::kFast);
  const Tensor fast_out = model.PredictBatch(Stack(samples));
  model.set_kernel_config(KernelConfig::kExact);

  ASSERT_EQ(fast_out.shape(), exact_out.shape());
  float scale = 0.0f;
  for (std::size_t i = 0; i < exact_out.size(); ++i) {
    scale = std::max(scale, std::abs(exact_out[i]));
  }
  EXPECT_TRUE(AllClose(fast_out, exact_out, 1e-3f * (1.0f + scale)))
      << "deviates by " << MaxAbsDiff(fast_out, exact_out);
}

// --------------------------------------------- dense packed-panel cache

TEST(BatchEquivalenceTest, DensePackedPanelsWarmOnceAtKernelConfig) {
  DenseLayer dense(64, 24);
  RandomizeParams(dense, 31);
  if (!PackedBSupported()) {
    GTEST_SKIP() << "no vector micro-kernel on this build";
  }
  EXPECT_FALSE(dense.packed_weights_valid());
  dense.set_kernel_config(KernelConfig::kFast);
  EXPECT_TRUE(dense.packed_weights_valid())
      << "set_kernel_config(kFast) must pack the weight panels eagerly";
}

TEST(BatchEquivalenceTest, DensePackedPanelsInvalidateOnWeightMutation) {
  // The invalidation contract behind online recovery: mutating the
  // weights through the fault-domain span (the path MILR recovery, fault
  // injectors, training and RestoreParams all use) must drop the cached
  // panels, and the next fast batch must serve the NEW weights — a stale
  // cache here would mean recovery repairs memory while inference keeps
  // serving the corrupted (or pre-repair) panels.
  DenseLayer dense(48, 20);
  RandomizeParams(dense, 77);
  dense.set_kernel_config(KernelConfig::kFast);
  const auto samples = RandomSamples(Shape{48}, 6, 170);
  const Tensor batched = Stack(samples);
  dense.ForwardBatch(batched);  // serve once from the warm cache

  RandomizeParams(dense, 78);  // "recovery" rewrites the weights
  if (PackedBSupported()) {
    EXPECT_FALSE(dense.packed_weights_valid())
        << "Params() mutation must invalidate the panel cache";
  }
  const Tensor fast_out = dense.ForwardBatch(batched);

  // Oracle: a fresh layer with identical (new) weights, exact tier.
  DenseLayer oracle(48, 20);
  RandomizeParams(oracle, 78);
  const Tensor exact_out = oracle.ForwardBatch(batched);
  float scale = 0.0f;
  for (std::size_t i = 0; i < exact_out.size(); ++i) {
    scale = std::max(scale, std::abs(exact_out[i]));
  }
  EXPECT_TRUE(AllClose(fast_out, exact_out, 1e-3f * (1.0f + scale)))
      << "stale packed panels served: deviates by "
      << MaxAbsDiff(fast_out, exact_out);
  if (PackedBSupported()) {
    EXPECT_TRUE(dense.packed_weights_valid()) << "lazy repack did not run";
  }
}

TEST(BatchEquivalenceTest, KernelConfigPropagatesToLayersAddedLater) {
  Model model(Shape{10, 10, 1});
  model.AddConv(3, 4, Padding::kValid);
  model.set_kernel_config(KernelConfig::kFast);
  model.AddFlatten().AddDense(5);  // added after the config flip
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    EXPECT_EQ(model.layer(i).kernel_config(), KernelConfig::kFast) << i;
  }
}

TEST(BatchEquivalenceTest, RejectsBatchlessInput) {
  Model model(Shape{6, 6, 1});
  model.AddConv(3, 2, Padding::kValid).AddBias().AddReLU();
  EXPECT_THROW(model.PredictBatch(Tensor(Shape{6})), std::invalid_argument);
  EXPECT_THROW(model.PredictBatch(std::vector<Tensor>{
                   Tensor(Shape{6, 6, 1}), Tensor(Shape{6, 6, 2})}),
               std::invalid_argument);
}

}  // namespace
}  // namespace milr::nn
