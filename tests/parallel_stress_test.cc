// Stress tests for support/parallel that force the true multi-threaded
// path: ParallelWorkerCount() caches its answer on first use, so this
// binary supplies its own main() and pins MILR_THREADS before any
// ParallelFor runs — on a single-core CI box the documented behaviors
// (exception propagation across threads, exactly-once coverage) would
// otherwise only exercise the serial fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/parallel.h"

namespace milr {
namespace {

TEST(ParallelStressTest, WorkerCountHonorsEnvOverride) {
  EXPECT_EQ(ParallelWorkerCount(), 4u);
}

TEST(ParallelStressTest, GrainLargerThanRangeCoversExactlyOnce) {
  std::vector<std::atomic<int>> counts(10);
  ParallelFor(0, counts.size(), [&](std::size_t i) { counts[i]++; },
              /*grain=*/100);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelStressTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(7, 7, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelStressTest, InvertedRangeIsNoop) {
  bool called = false;
  ParallelFor(9, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelStressTest, ExceptionFromWorkerThreadPropagates) {
  // grain 1 over a large range guarantees work is spread across the four
  // workers; the throwing index lands on a spawned thread, and the
  // documented contract is that the exception resurfaces on the caller.
  EXPECT_THROW(
      ParallelFor(0, 10000,
                  [](std::size_t i) {
                    if (i == 7777) throw std::runtime_error("worker boom");
                  },
                  /*grain=*/1),
      std::runtime_error);
}

TEST(ParallelStressTest, UsableAgainAfterWorkerException) {
  try {
    ParallelFor(0, 1000, [](std::size_t i) {
      if (i == 500) throw std::logic_error("first");
    });
  } catch (const std::logic_error&) {
  }
  std::atomic<int> total{0};
  ParallelFor(0, 1000, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ParallelStressTest, RepeatedRunsWithVaryingGrainsCoverExactlyOnce) {
  for (const std::size_t grain : {1ul, 3ul, 17ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> counts(4096);
    ParallelFor(0, counts.size(), [&](std::size_t i) { counts[i]++; }, grain);
    for (const auto& c : counts) ASSERT_EQ(c.load(), 1) << "grain " << grain;
  }
}

TEST(ParallelStressTest, ConcurrentTopLevelCallsDoNotInterfere) {
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      ParallelFor(0, 2500, [&](std::size_t) { total++; });
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 10000);
}

TEST(ParallelStressTest, NestedCallsStillCoverEverything) {
  std::atomic<int> total{0};
  ParallelFor(0, 16, [&](std::size_t) {
    ParallelFor(0, 16, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 256);
}

}  // namespace
}  // namespace milr

int main(int argc, char** argv) {
  // Must precede the first ParallelFor: the worker count is cached.
  setenv("MILR_THREADS", "4", /*overwrite=*/1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
