// Plaintext-space vs ciphertext-space error behavior (the paper's core
// motivation, Section I / Fig. 1).
#include <gtest/gtest.h>

#include "memory/encrypted_memory.h"
#include "memory/fault_injector.h"
#include "milr/protector.h"
#include "nn/init.h"
#include "support/bytes.h"
#include "support/prng.h"

namespace milr::memory {
namespace {

nn::Model SmallModel() {
  nn::Model model(Shape{8, 8, 1});
  model.AddConv(3, 4, nn::Padding::kValid).AddBias().AddReLU();
  model.AddFlatten();
  model.AddDense(10).AddBias();
  nn::InitHeUniform(model, 21);
  return model;
}

TEST(EncryptedMemoryTest, RoundTripWithoutErrors) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  EncryptedParamSpace space(model, /*key_seed=*/5);
  // Wipe the plaintext weights, then restore from ciphertext.
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    for (auto& p : model.layer(i).Params()) p = 0.0f;
  }
  space.DecryptInto(model);
  const auto restored = model.SnapshotParams();
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(golden[i].size(), restored[i].size());
    for (std::size_t p = 0; p < golden[i].size(); ++p) {
      EXPECT_EQ(FloatBits(golden[i][p]), FloatBits(restored[i][p]));
    }
  }
}

TEST(EncryptedMemoryTest, OneCiphertextBitCorruptsFourWeights) {
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  EncryptedParamSpace space(model, 7);
  space.FlipCiphertextBit(3);  // inside the first 16-byte block of layer 0
  space.DecryptInto(model);

  // Exactly the 4 floats of the first AES block of conv params changed,
  // each catastrophically (many-bit damage).
  auto params = model.layer(0).Params();
  int damaged = 0;
  int total_flipped_bits = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const int distance = FloatBitDistance(params[p], golden[0][p]);
    if (distance > 0) {
      ++damaged;
      total_flipped_bits += distance;
      EXPECT_LT(p, 4u);  // confined to the first block
    }
  }
  EXPECT_EQ(damaged, 4);
  EXPECT_GT(total_flipped_bits, 40);  // ≈ 64 expected of 128
  // Other layers untouched.
  auto dense_params = model.layer(4).Params();
  for (std::size_t p = 0; p < dense_params.size(); ++p) {
    EXPECT_EQ(FloatBits(dense_params[p]), FloatBits(golden[4][p]));
  }
}

TEST(EncryptedMemoryTest, CiphertextRberInjection) {
  nn::Model model = SmallModel();
  EncryptedParamSpace space(model, 9);
  Prng prng(1);
  const std::size_t flips = space.InjectCiphertextBitFlips(1e-3, prng);
  const double expected = 1e-3 * static_cast<double>(space.CiphertextBits());
  EXPECT_GT(flips, 0u);
  EXPECT_NEAR(static_cast<double>(flips), expected, expected);
}

TEST(EncryptedMemoryTest, MilrHealsPlaintextBlockDamage) {
  // The full PSEC story: ciphertext bit flip → plaintext block corruption →
  // ECC useless (multi-bit) → MILR detects and recovers.
  nn::Model model = SmallModel();
  const auto golden = model.SnapshotParams();
  core::MilrProtector protector(model);
  EncryptedParamSpace space(model, 11);

  // Flip one ciphertext bit inside the dense layer's region. Dense region
  // starts after conv (36 floats→144 bytes) and bias (4 floats→16 bytes).
  const std::size_t dense_byte_offset = 144 + 16;
  space.FlipCiphertextBit(dense_byte_offset * 8 + 5);
  space.DecryptInto(model);

  const auto detection = protector.Detect();
  ASSERT_EQ(detection.flagged_layers.size(), 1u);
  EXPECT_EQ(detection.flagged_layers[0], 4u);  // the dense layer

  const auto recovery = protector.Recover(detection);
  EXPECT_TRUE(recovery.all_ok());
  auto params = model.layer(4).Params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    EXPECT_NEAR(params[p], golden[4][p], 1e-4f);
  }
}

}  // namespace
}  // namespace milr::memory
