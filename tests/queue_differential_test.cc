// Differential validation of the lock-free queue against the mutex
// oracle (the reason the oracle stays in the tree):
//
//   1. Sequential lockstep — a seeded random op script drives BOTH queue
//      kinds one op at a time; every return value, popped item, size,
//      depth and closed flag must match EXACTLY, op for op. Sequentially
//      the two implementations are observationally identical by
//      contract, so any divergence is a bug with a replayable seed.
//   2. Concurrent workloads — the same seeded producer/consumer mix runs
//      on each kind; interleavings differ, so the comparison is the
//      invariants (conservation, per-producer FIFO, exact settle), which
//      must hold for both.
//   3. End-to-end serving — the acceptance bar: the same model, the same
//      requests, one engine per queue kind, bit-identical outputs.
//
// Runs under TSan in CI next to the litmus harnesses.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/init.h"
#include "runtime/engine.h"
#include "runtime/request_queue.h"
#include "support/prng.h"

namespace milr::runtime {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------- sequential lockstep

TEST(QueueDifferentialTest, SequentialScriptMatchesOracleExactly) {
  constexpr std::size_t kCapacity = 6;
  constexpr int kOps = 20000;
  BoundedQueue<int> oracle(kCapacity, QueueKind::kMutex);
  BoundedQueue<int> ring(kCapacity, QueueKind::kLockfree);
  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<int> op_dist(0, 99);
  int next_value = 0;

  for (int op = 0; op < kOps; ++op) {
    const int roll = op_dist(rng);
    if (roll < 30) {
      int a = next_value, b = next_value;
      ++next_value;
      ASSERT_EQ(oracle.TryPush(a), ring.TryPush(b)) << "op " << op;
    } else if (roll < 45) {
      // Blocking push, guarded so it cannot actually block: only when
      // space exists or the queue is closed (where it returns false).
      if (oracle.size() < kCapacity || oracle.closed()) {
        const int v = next_value++;
        ASSERT_EQ(oracle.Push(v), ring.Push(v)) << "op " << op;
      }
    } else if (roll < 60) {
      // Blocking pop, guarded the same way.
      if (oracle.size() > 0 || oracle.closed()) {
        const auto a = oracle.Pop();
        const auto b = ring.Pop();
        ASSERT_EQ(a.has_value(), b.has_value()) << "op " << op;
        if (a.has_value()) ASSERT_EQ(*a, *b) << "op " << op;
      }
    } else if (roll < 85) {
      std::vector<int> a, b;
      const std::size_t want = 1 + static_cast<std::size_t>(roll % 4);
      ASSERT_EQ(oracle.TryPopBatch(a, want, 0us),
                ring.TryPopBatch(b, want, 0us))
          << "op " << op;
      ASSERT_EQ(a, b) << "op " << op;
    } else if (roll < 92) {
      oracle.Close();
      ring.Close();
    } else if (oracle.closed() && oracle.size() == 0) {
      // Reopen only over a drained queue (the documented contract).
      oracle.Reopen();
      ring.Reopen();
    }
    ASSERT_EQ(oracle.size(), ring.size()) << "op " << op;
    ASSERT_EQ(oracle.DepthRelaxed(), ring.DepthRelaxed()) << "op " << op;
    ASSERT_EQ(oracle.closed(), ring.closed()) << "op " << op;
  }
}

// ---------------------------------------------- concurrent invariants

struct WorkloadResult {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t consumed = 0;
};

/// Runs a seeded producers×consumers mix on one queue kind and checks
/// the interleaving-independent invariants inline (per-consumer
/// per-producer FIFO). Returns the totals for the conservation check.
WorkloadResult RunWorkload(QueueKind kind, unsigned seed) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 3000;
  constexpr std::uint64_t kStride = 1u << 20;
  BoundedQueue<std::uint64_t> queue(24, kind);
  WorkloadResult result;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      std::mt19937 rng(seed + static_cast<unsigned>(p));
      std::uniform_int_distribution<int> coin(0, 1);
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t item =
            static_cast<std::uint64_t>(p) * kStride +
            static_cast<std::uint64_t>(i);
        if (coin(rng) == 0) {
          if (queue.TryPush(item)) {
            admitted.fetch_add(1, std::memory_order_relaxed);
          } else {
            shed.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (queue.Push(item)) {
            admitted.fetch_add(1, std::memory_order_relaxed);
          } else {
            return;  // closed
          }
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937 rng(seed + 1000u + static_cast<unsigned>(c));
      std::uniform_int_distribution<std::size_t> batch(1, 6);
      std::vector<std::uint64_t> out;
      std::vector<std::uint64_t> last(kProducers, 0);
      std::vector<bool> started(kProducers, false);
      for (;;) {
        out.clear();
        const std::size_t n = queue.TryPopBatch(out, batch(rng), 20us);
        for (const std::uint64_t item : out) {
          const auto p = static_cast<std::size_t>(item / kStride);
          const std::uint64_t s = item % kStride;
          if (started[p]) {
            // A consumer's own stream respects each producer's push
            // order — FIFO dequeue means no consumer can see producer
            // p's item k after item k+1.
            EXPECT_GT(s, last[p]) << "kind " << QueueKindName(kind);
          }
          started[p] = true;
          last[p] = s;
        }
        consumed.fetch_add(n, std::memory_order_relaxed);
        if (n == 0 && queue.closed() && queue.size() == 0) return;
        if (n == 0) std::this_thread::yield();
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<std::size_t>(p)].join();
  }
  queue.Close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(queue.size(), 0u) << "kind " << QueueKindName(kind);
  result.admitted = admitted.load();
  result.shed = shed.load();
  result.consumed = consumed.load();
  return result;
}

TEST(QueueDifferentialTest, ConcurrentWorkloadInvariantsHoldOnBothKinds) {
  for (unsigned seed : {7u, 99u, 20260808u}) {
    for (const QueueKind kind :
         {QueueKind::kMutex, QueueKind::kLockfree}) {
      const WorkloadResult r = RunWorkload(kind, seed);
      // Conservation: every admitted item is consumed exactly once, and
      // admitted + shed accounts for every push attempt that returned.
      EXPECT_EQ(r.consumed, r.admitted)
          << "kind " << QueueKindName(kind) << " seed " << seed;
      EXPECT_GT(r.admitted, 0u)
          << "kind " << QueueKindName(kind) << " seed " << seed;
    }
  }
}

// ------------------------------------------------ end-to-end serving

/// Same topology as the protector/runtime tests.
nn::Model TestModel() {
  nn::Model model(Shape{10, 10, 1});
  model.AddConv(3, 12, nn::Padding::kValid).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddConv(3, 8, nn::Padding::kValid).AddBias().AddReLU();
  model.AddFlatten();
  model.AddDense(6).AddBias().AddReLU();
  model.AddDense(3).AddBias();
  nn::InitHeUniform(model, 42);
  return model;
}

TEST(QueueDifferentialTest, ServingBitIdenticalAcrossQueueKinds) {
  // The acceptance bar: identical requests through an engine per queue
  // kind (exact kernel tier, scrubber off) produce bit-identical
  // outputs — the queue moves requests, it must never change results.
  Prng prng(4321);
  std::vector<Tensor> probes;
  for (int i = 0; i < 12; ++i) {
    probes.push_back(RandomTensor(Shape{10, 10, 1}, prng));
  }

  std::vector<std::vector<Tensor>> outputs;
  for (const QueueKind kind :
       {QueueKind::kMutex, QueueKind::kLockfree}) {
    nn::Model model = TestModel();
    EngineConfig config;
    config.scrubber_enabled = false;
    config.queue_kind = kind;
    config.max_batch = 4;
    config.worker_threads = 2;
    InferenceEngine engine(model, config);
    engine.Start();
    // Burst-submit so the micro-batcher actually forms batches — the
    // batched serve path must be bit-stable across queue kinds too.
    std::vector<std::future<Tensor>> futures;
    for (const auto& probe : probes) {
      futures.push_back(engine.Submit(Tensor(probe)));
    }
    std::vector<Tensor> got;
    for (auto& f : futures) got.push_back(f.get());
    engine.Stop();
    outputs.push_back(std::move(got));
  }

  nn::Model reference = TestModel();
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const Tensor expected = reference.Predict(probes[i]);
    EXPECT_EQ(MaxAbsDiff(outputs[0][i], expected), 0.0f)
        << "mutex-queue serving diverged from direct forward, probe " << i;
    EXPECT_EQ(MaxAbsDiff(outputs[1][i], outputs[0][i]), 0.0f)
        << "lockfree-queue serving diverged from the mutex oracle, probe "
        << i;
  }
}

}  // namespace
}  // namespace milr::runtime
