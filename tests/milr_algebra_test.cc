#include <gtest/gtest.h>

#include "milr/algebra.h"
#include "support/bytes.h"
#include "support/prng.h"

namespace milr::core {
namespace {

Tensor RandomT(Shape shape, std::uint64_t seed) {
  Prng prng(seed);
  return RandomTensor(std::move(shape), prng);
}

// ------------------------------------------------------------ dense f⁻¹

TEST(DenseBackwardTest, ExactWhenWide) {
  // P ≥ N: invertible without augmentation.
  nn::DenseLayer dense(6, 10);
  dense.weights() = RandomT(Shape{6, 10}, 1);
  const Tensor x = RandomT(Shape{6}, 2);
  const Tensor y = dense.Forward(x);
  auto back = DenseBackward(dense, y, 0, 0, {});
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-5f);
}

TEST(DenseBackwardTest, AugmentedWhenNarrow) {
  // P < N: needs α = N − P dummy columns (paper Section IV-A a).
  nn::DenseLayer dense(8, 3);
  dense.weights() = RandomT(Shape{8, 3}, 3);
  const Tensor x = RandomT(Shape{8}, 4);
  const Tensor y = dense.Forward(x);

  const std::size_t alpha = 5;
  const std::uint64_t seed = 77;
  const Tensor dummy = MakeDenseDummyColumns(8, alpha, seed);
  // Golden outputs of the dummy columns for this x.
  std::vector<float> dummy_outputs(alpha, 0.0f);
  for (std::size_t c = 0; c < alpha; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < 8; ++r) {
      acc += static_cast<double>(x[r]) * static_cast<double>(dummy.at(r, c));
    }
    dummy_outputs[c] = static_cast<float>(acc);
  }
  auto back = DenseBackward(dense, y, alpha, seed, dummy_outputs);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-4f);
}

TEST(DenseBackwardTest, InsufficientEquationsRejected) {
  nn::DenseLayer dense(8, 3);
  const Tensor y(Shape{3});
  auto back = DenseBackward(dense, y, 2, 0, std::vector<float>(2));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kUnsolvable);
}

// ------------------------------------------------------------- dense R

TEST(DenseSolveTest, RecoversExactWeights) {
  nn::DenseLayer dense(12, 7);
  dense.weights() = RandomT(Shape{12, 7}, 5);
  const Tensor golden = dense.weights();

  const Tensor x = RandomT(Shape{12}, 6);
  const Tensor y = dense.Forward(x);
  const std::size_t dummy_rows = 11;
  const std::uint64_t seed = 88;
  const Tensor rows = MakeDenseDummyRows(dummy_rows, 12, seed);
  const Tensor dummy_outputs = dense.Forward(rows);

  // Corrupt, then solve back.
  dense.weights().Fill(0.0f);
  auto solved = DenseSolveParams(dense, x, y, dummy_rows, seed, dummy_outputs);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-4f);
}

TEST(DenseSolveTest, RecoveryErrorIsFloatRoundingOnly) {
  // The stored golden outputs are float32, so recovered weights carry a
  // small rounding residue (the paper's acknowledged limitation, §V-A) —
  // but it must stay at rounding scale, orders below any accuracy impact.
  nn::DenseLayer dense(16, 4);
  dense.weights() = RandomT(Shape{16, 4}, 7);
  const Tensor golden = dense.weights();
  const Tensor x = RandomT(Shape{16}, 8);
  const Tensor y = dense.Forward(x);
  const Tensor rows = MakeDenseDummyRows(15, 16, 9);
  const Tensor dummy_outputs = dense.Forward(rows);
  auto solved = DenseSolveParams(dense, x, y, 15, 9, dummy_outputs);
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-5f);
}

TEST(DenseSolveTest, SelfContainedModeIgnoresRealPair) {
  // Extension: with N dummy rows the propagated pair is not used, so a
  // corrupted real pair cannot poison the solution.
  nn::DenseLayer dense(12, 5);
  dense.weights() = RandomT(Shape{12, 5}, 70);
  const Tensor golden = dense.weights();
  const Tensor rows = MakeDenseDummyRows(12, 12, 71);
  const Tensor dummy_outputs = dense.Forward(rows);
  // Garbage real pair — must not matter.
  const Tensor x = Tensor::Full(Shape{12}, 1e9f);
  const Tensor y = Tensor::Full(Shape{5}, -1e9f);
  auto solved = DenseSolveParams(dense, x, y, 12, 71, dummy_outputs);
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-5f);
}

TEST(DenseSolveTest, TooFewRowsRejected) {
  nn::DenseLayer dense(10, 3);
  auto solved = DenseSolveParams(dense, Tensor(Shape{10}), Tensor(Shape{3}),
                                 3, 0, Tensor(Shape{3, 3}));
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kUnsolvable);
}

// ------------------------------------------------------------- conv f⁻¹

TEST(ConvBackwardTest, ExactWhenManyFilters) {
  // Y = 12 ≥ F²Z = 9: invertible without augmentation.
  nn::Conv2DLayer conv(3, 1, 12, nn::Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 1, 12}, 10);
  const Tensor x = RandomT(Shape{6, 6, 1}, 11);
  const Tensor y = conv.Forward(x);
  auto back = ConvBackward(conv, y, 6, 0, 0, Tensor{});
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-4f);
}

TEST(ConvBackwardTest, AugmentedWithDummyFilters) {
  // Y = 4 < F²Z = 9: α = 5 PRNG dummy filters complete the system
  // (paper Section IV-B a).
  nn::Conv2DLayer conv(3, 1, 4, nn::Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 1, 4}, 12);
  const Tensor x = RandomT(Shape{6, 6, 1}, 13);
  const Tensor y = conv.Forward(x);

  const std::size_t alpha = 5;
  const std::uint64_t seed = 99;
  const Tensor dummy = MakeConvDummyFilters(conv, alpha, seed);
  // Golden dummy outputs: patches(x) × dummy filters.
  const Tensor patches = conv.BuildPatchMatrix(x);
  const std::size_t g2 = patches.shape()[0];
  Tensor dummy_outputs(Shape{g2, alpha});
  for (std::size_t p = 0; p < g2; ++p) {
    for (std::size_t c = 0; c < alpha; ++c) {
      double acc = 0.0;
      for (std::size_t u = 0; u < 9; ++u) {
        acc += static_cast<double>(patches.at(p, u)) *
               static_cast<double>(dummy[u * alpha + c]);
      }
      dummy_outputs.at(p, c) = static_cast<float>(acc);
    }
  }
  auto back = ConvBackward(conv, y, 6, alpha, seed, dummy_outputs);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-3f);
}

TEST(ConvBackwardTest, SamePaddingRoundTrip) {
  nn::Conv2DLayer conv(3, 2, 32, nn::Padding::kSame);
  conv.filters() = RandomT(Shape{3, 3, 2, 32}, 14);
  const Tensor x = RandomT(Shape{5, 5, 2}, 15);
  const Tensor y = conv.Forward(x);
  auto back = ConvBackward(conv, y, 5, 0, 0, Tensor{});
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_LT(MaxAbsDiff(back.value(), x), 1e-3f);
}

TEST(ConvBackwardTest, InsufficientEquationsRejected) {
  nn::Conv2DLayer conv(3, 2, 4, nn::Padding::kValid);  // F²Z = 18 > Y = 4
  const Tensor y(Shape{4, 4, 4});
  auto back = ConvBackward(conv, y, 6, 0, 0, Tensor{});
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kUnsolvable);
}

// --------------------------------------------------------------- conv R

TEST(ConvSolveFullTest, RecoversFilters) {
  // G² = 36 ≥ F²Z = 9.
  nn::Conv2DLayer conv(3, 1, 5, nn::Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 1, 5}, 16);
  const Tensor golden = conv.filters();
  const Tensor x = RandomT(Shape{8, 8, 1}, 17);
  const Tensor y = conv.Forward(x);

  conv.filters().Fill(7.0f);  // corrupt everything
  auto solved = ConvSolveParamsFull(conv, x, y);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-4f);
}

TEST(ConvSolveFullTest, RejectsUnderdetermined) {
  // G² = 4 < F²Z = 27.
  nn::Conv2DLayer conv(3, 3, 8, nn::Padding::kValid);
  const Tensor x = RandomT(Shape{4, 4, 3}, 18);
  const Tensor y(Shape{2, 2, 8});
  auto solved = ConvSolveParamsFull(conv, x, y);
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kUnsolvable);
}

class ConvPartialSolve : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvPartialSolve, RepairsListedWeights) {
  // G² = 16 < F²Z = 18: partial recoverability regime.
  nn::Conv2DLayer conv(3, 2, 6, nn::Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 2, 6}, 19);
  const Tensor golden = conv.filters();
  const Tensor x = RandomT(Shape{6, 6, 2}, 20);
  const Tensor y = conv.Forward(x);

  // Corrupt `count` random weights (all bits).
  const std::size_t count = GetParam();
  Prng prng(21 + count);
  std::vector<std::size_t> victims;
  while (victims.size() < count) {
    const std::size_t v = prng.NextBelow(golden.size());
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  for (const auto v : victims) {
    conv.filters()[v] = FloatFromBits(FloatBits(conv.filters()[v]) ^ 0xffffffffu);
  }

  PartialSolveStats stats;
  auto solved = ConvSolveParamsPartial(conv, x, y, victims, &stats);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_EQ(stats.suspected_weights, count);
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Counts, ConvPartialSolve,
                         ::testing::Values(1, 3, 8, 16, 40));

TEST(ConvPartialSolveTest, FalsePositivesAreHarmless) {
  // Suspecting clean weights must still recover them to their true values.
  nn::Conv2DLayer conv(3, 2, 4, nn::Padding::kValid);
  conv.filters() = RandomT(Shape{3, 3, 2, 4}, 22);
  const Tensor golden = conv.filters();
  const Tensor x = RandomT(Shape{7, 7, 2}, 23);
  const Tensor y = conv.Forward(x);

  conv.filters()[5] += 10.0f;  // the only real error
  const std::vector<std::size_t> suspects = {1, 5, 9, 13};  // 3 false alarms
  PartialSolveStats stats;
  auto solved = ConvSolveParamsPartial(conv, x, y, suspects, &stats);
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(MaxAbsDiff(solved.value(), golden), 1e-3f);
}

TEST(ConvPartialSolveTest, WholeFilterBankIsUnderdetermined) {
  // All weights of every filter suspected with G² < F²Z: least-squares
  // fallback runs but cannot restore the exact weights (Tables IV/VI/VIII
  // "N/A*" rows).
  nn::Conv2DLayer conv(3, 4, 6, nn::Padding::kValid);  // F²Z = 36 > G² = 16
  conv.filters() = RandomT(Shape{3, 3, 4, 6}, 24);
  const Tensor golden = conv.filters();
  const Tensor x = RandomT(Shape{6, 6, 4}, 25);
  const Tensor y = conv.Forward(x);

  std::vector<std::size_t> all(golden.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  conv.filters().Fill(3.0f);
  PartialSolveStats stats;
  auto solved = ConvSolveParamsPartial(conv, x, y, all, &stats);
  ASSERT_TRUE(solved.ok());
  EXPECT_EQ(stats.least_squares_filters, 6u);
  // The least-squares filters still reproduce the observed output.
  nn::Conv2DLayer check(3, 4, 6, nn::Padding::kValid);
  check.filters() = solved.value();
  EXPECT_LT(MaxAbsDiff(check.Forward(x), y), 1e-3f);
}

// ----------------------------------------------------------------- bias

TEST(BiasAlgebraTest, BackwardAndSolve) {
  nn::BiasLayer bias(4);
  bias.bias() = RandomT(Shape{4}, 26);
  const Tensor x = RandomT(Shape{3, 3, 4}, 27);
  const Tensor y = bias.Forward(x);

  EXPECT_LT(MaxAbsDiff(BiasBackward(bias, y), x), 1e-6f);
  const Tensor solved = BiasSolveParams(x, y, 4);
  EXPECT_LT(MaxAbsDiff(solved, bias.bias()), 1e-6f);
}

TEST(BiasAlgebraTest, SolveIsBitExact) {
  // y − x in float is exact when computed at the same positions.
  nn::BiasLayer bias(8);
  bias.bias() = RandomT(Shape{8}, 28);
  const Tensor x = RandomT(Shape{2, 2, 8}, 29);
  const Tensor y = bias.Forward(x);
  const Tensor solved = BiasSolveParams(x, y, 8);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(FloatBits(solved[c]),
              FloatBits(y[c] - x[c]));
  }
}

}  // namespace
}  // namespace milr::core
