#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "ecc/crc.h"
#include "ecc/crc2d.h"
#include "support/bytes.h"
#include "support/prng.h"
#include "tensor/tensor.h"

namespace milr::ecc {
namespace {

TEST(Crc8Test, KnownVector) {
  // CRC-8/SMBUS of "123456789" is 0xF4.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc8(msg), 0xF4);
}

TEST(Crc8Test, SensitiveToSingleBit) {
  std::uint8_t a[4] = {1, 2, 3, 4};
  std::uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_NE(Crc8(a), Crc8(b));
}

TEST(Crc8Test, FloatsMatchBytes) {
  const float values[2] = {1.5f, -2.25f};
  std::uint8_t raw[8];
  std::memcpy(raw, values, 8);
  EXPECT_EQ(Crc8OfFloats(values), Crc8(raw));
}

Tensor RandomFilters(std::size_t f, std::size_t z, std::size_t y,
                     std::uint64_t seed) {
  Prng prng(seed);
  return RandomTensor(Shape{f, f, z, y}, prng);
}

TEST(Crc2dTest, CleanTensorHasNoSuspects) {
  const Tensor filters = RandomFilters(3, 8, 16, 1);
  const auto codes = ComputeCrc2d(filters);
  EXPECT_TRUE(LocalizeErrors(filters, codes).empty());
}

TEST(Crc2dTest, LocalizesSingleCorruptedWeight) {
  Tensor filters = RandomFilters(3, 8, 16, 2);
  const auto codes = ComputeCrc2d(filters);
  const std::size_t victim = 137;
  filters[victim] = FlipFloatBit(filters[victim], 30);
  const auto suspects = LocalizeErrors(filters, codes);
  ASSERT_FALSE(suspects.empty());
  EXPECT_NE(std::find(suspects.begin(), suspects.end(), victim),
            suspects.end());
  // A single error in one (row, col) intersection localizes exactly.
  EXPECT_EQ(suspects.size(), 1u);
}

TEST(Crc2dTest, LocalizesWholeWeightError) {
  Tensor filters = RandomFilters(5, 16, 8, 3);
  const auto codes = ComputeCrc2d(filters);
  const std::size_t victim = 901;
  filters[victim] = FloatFromBits(FloatBits(filters[victim]) ^ 0xffffffffu);
  const auto suspects = LocalizeErrors(filters, codes);
  EXPECT_NE(std::find(suspects.begin(), suspects.end(), victim),
            suspects.end());
}

class Crc2dMultiError : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc2dMultiError, SuspectsCoverAllTrueErrors) {
  const std::size_t error_count = GetParam();
  Tensor filters = RandomFilters(3, 16, 32, 4 + error_count);
  const auto codes = ComputeCrc2d(filters);
  Prng prng(99 + error_count);
  std::vector<std::size_t> victims;
  while (victims.size() < error_count) {
    const std::size_t v = prng.NextBelow(filters.size());
    if (std::find(victims.begin(), victims.end(), v) != victims.end()) {
      continue;
    }
    victims.push_back(v);
    filters[v] = FlipFloatBit(filters[v], static_cast<int>(prng.NextBelow(32)));
  }
  const auto suspects = LocalizeErrors(filters, codes);
  // Every true error must be contained (possibly with false positives at
  // row/column intersections — the recovery solver tolerates those).
  for (const std::size_t v : victims) {
    EXPECT_NE(std::find(suspects.begin(), suspects.end(), v), suspects.end())
        << "missing victim " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorCounts, Crc2dMultiError,
                         ::testing::Values(1, 2, 4, 8, 32, 128));

TEST(Crc2dTest, FalsePositivesStayWithinIntersections) {
  // Two errors in the same slice at (r1,c1) and (r2,c2) may also flag
  // (r1,c2) and (r2,c1) — but nothing outside those intersections.
  Tensor filters = RandomFilters(1, 8, 8, 7);  // single slice, 8×8 grid
  const auto codes = ComputeCrc2d(filters);
  filters.at(0, 0, 1, 2) = 100.0f;
  filters.at(0, 0, 5, 6) = -100.0f;
  const auto suspects = LocalizeErrors(filters, codes);
  for (const std::size_t s : suspects) {
    const std::size_t r = (s / 8) % 8;
    const std::size_t c = s % 8;
    EXPECT_TRUE((r == 1 || r == 5) && (c == 2 || c == 6))
        << "unexpected suspect at (" << r << "," << c << ")";
  }
}

TEST(Crc2dTest, GroupSizeOneLocalizesExactly) {
  Tensor filters = RandomFilters(3, 4, 4, 8);
  const auto codes = ComputeCrc2d(filters, /*group=*/1);
  filters[17] += 1.0f;
  filters[33] -= 1.0f;
  const auto suspects = LocalizeErrors(filters, codes);
  EXPECT_EQ(suspects.size(), 2u);
}

TEST(Crc2dTest, NonMultipleOfGroupDimensions) {
  // 5×7 grid with group 4 exercises the ragged tail groups.
  Prng prng(12);
  Tensor params = RandomTensor(Shape{5, 7}, prng);
  const auto codes = ComputeCrc2d(params);
  params.at(4, 6) = 42.0f;
  const auto suspects = LocalizeErrors(params, codes);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 4u * 7u + 6u);
}

TEST(Crc2dTest, ShapeMismatchThrows) {
  const Tensor a = RandomFilters(3, 4, 4, 1);
  const Tensor b = RandomFilters(3, 4, 8, 1);
  const auto codes = ComputeCrc2d(a);
  EXPECT_THROW(LocalizeErrors(b, codes), std::invalid_argument);
}

TEST(Crc2dTest, StorageMatchesPaperAccounting) {
  // F²·Z row groups of ⌈Y/4⌉ codes + F²·Y column groups of ⌈Z/4⌉ codes.
  const Tensor filters = RandomFilters(3, 32, 64, 5);
  const auto codes = ComputeCrc2d(filters);
  const std::size_t expected = 9 * 32 * (64 / 4) + 9 * 64 * (32 / 4);
  EXPECT_EQ(codes.SizeBytes(), expected);
}

}  // namespace
}  // namespace milr::ecc
