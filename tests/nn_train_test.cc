#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/init.h"
#include "nn/train.h"

namespace milr::nn {
namespace {

Model TinyClassifier() {
  Model model(Shape{12, 12, 1});
  model.AddConv(3, 8, Padding::kValid).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddFlatten();
  model.AddDense(10).AddBias();
  return model;
}

data::SyntheticSpec TinySpec() {
  data::SyntheticSpec spec;
  spec.image_size = 12;
  spec.channels = 1;
  spec.noise = 0.15f;
  spec.seed = 3;
  return spec;
}

TEST(SyntheticDataTest, BalancedLabels) {
  const auto data = data::GenerateSynthetic(TinySpec(), 200);
  std::vector<int> counts(10, 0);
  for (const auto label : data.labels) counts[label]++;
  for (const int c : counts) EXPECT_EQ(c, 20);
}

TEST(SyntheticDataTest, Deterministic) {
  const auto a = data::GenerateSynthetic(TinySpec(), 20);
  const auto b = data::GenerateSynthetic(TinySpec(), 20);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(a.images[i], b.images[i]), 0.0f);
  }
}

TEST(SyntheticDataTest, ClassesAreDistinguishable) {
  // Mean images of different classes should differ far more than noise.
  const auto data = data::GenerateSynthetic(TinySpec(), 100);
  Tensor mean0(data.images[0].shape());
  Tensor mean5(data.images[0].shape());
  int n0 = 0, n5 = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.labels[i] == 0) {
      for (std::size_t j = 0; j < mean0.size(); ++j) {
        mean0[j] += data.images[i][j];
      }
      ++n0;
    } else if (data.labels[i] == 5) {
      for (std::size_t j = 0; j < mean5.size(); ++j) {
        mean5[j] += data.images[i][j];
      }
      ++n5;
    }
  }
  for (std::size_t j = 0; j < mean0.size(); ++j) {
    mean0[j] /= static_cast<float>(n0);
    mean5[j] /= static_cast<float>(n5);
  }
  EXPECT_GT(MaxAbsDiff(mean0, mean5), 0.2f);
}

TEST(TrainTest, LossDecreasesAndAccuracyRises) {
  Model model = TinyClassifier();
  InitHeUniform(model, 1);
  const auto train = data::GenerateSynthetic(TinySpec(), 600);

  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 32;
  config.learning_rate = 0.05f;
  const auto history = Fit(model, train, config);

  ASSERT_EQ(history.size(), 4u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(history.back().train_accuracy, 0.6);

  // Held-out generalization: same distribution, later draws.
  auto spec = TinySpec();
  spec.seed = 4;
  const auto test = data::GenerateSynthetic(spec, 200);
  EXPECT_GT(Evaluate(model, test), 0.6);
}

TEST(TrainTest, DeterministicGivenSeeds) {
  const auto train = data::GenerateSynthetic(TinySpec(), 100);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;

  Model a = TinyClassifier();
  InitHeUniform(a, 7);
  Model b = TinyClassifier();
  InitHeUniform(b, 7);
  // Sharding is deterministic (fixed shard count, fixed reduction order),
  // so two identical runs must produce bit-identical training curves.
  const auto ha = Fit(a, train, config);
  const auto hb = Fit(b, train, config);
  EXPECT_EQ(ha[0].mean_loss, hb[0].mean_loss);
}

TEST(TrainTest, EmptyDatasetRejected) {
  Model model = TinyClassifier();
  EXPECT_THROW(Fit(model, Dataset{}, TrainConfig{}), std::invalid_argument);
}

TEST(EvaluateTest, PerfectAndZero) {
  Model model(Shape{2});
  model.AddDense(2);
  auto& dense = static_cast<DenseLayer&>(model.layer(0));
  dense.weights() = Tensor(Shape{2, 2}, {1, 0, 0, 1});  // identity
  Dataset data;
  data.images.push_back(Tensor(Shape{2}, {1.0f, 0.0f}));
  data.labels.push_back(0);
  data.images.push_back(Tensor(Shape{2}, {0.0f, 1.0f}));
  data.labels.push_back(1);
  EXPECT_DOUBLE_EQ(Evaluate(model, data), 1.0);
  data.labels = {1, 0};
  EXPECT_DOUBLE_EQ(Evaluate(model, data), 0.0);
}

}  // namespace
}  // namespace milr::nn
