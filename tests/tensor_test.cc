#include <gtest/gtest.h>

#include "support/prng.h"
#include "tensor/tensor.h"

namespace milr {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(Shape({2, 3, 4}).NumElements(), 24u);
  EXPECT_EQ(Shape({7}).NumElements(), 7u);
  EXPECT_EQ(Shape{}.NumElements(), 1u);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({26, 26, 32}).ToString(), "(26,26,32)");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, RowMajorIndexing) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[1 * 3 + 2], 5.0f);
  t.at(0, 0) = 1.0f;
  EXPECT_EQ(t[0], 1.0f);
}

TEST(TensorTest, Rank3And4Indexing) {
  Tensor t3(Shape{2, 3, 4});
  t3.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t3[(1 * 3 + 2) * 4 + 3], 9.0f);

  Tensor t4(Shape{2, 2, 2, 2});
  t4.at(1, 0, 1, 0) = 7.0f;
  EXPECT_EQ(t4[((1 * 2 + 0) * 2 + 1) * 2 + 0], 7.0f);
}

TEST(TensorTest, RankMismatchThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0), std::invalid_argument);
}

TEST(TensorTest, OutOfRangeThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 3), std::out_of_range);
}

TEST(TensorTest, ConstructFromData) {
  Tensor t(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f}), std::invalid_argument);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.Reshaped(Shape{3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.Reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::Full(Shape{5}, 2.5f);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5f);
  t.Fill(0.0f);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a(Shape{3}, {1.0f, 2.0f, 3.0f});
  Tensor b(Shape{3}, {1.0f, 2.5f, 2.0f});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0f);
  EXPECT_TRUE(AllClose(a, a, 0.0f));
  EXPECT_FALSE(AllClose(a, b, 0.5f));
}

TEST(TensorTest, MaxAbsDiffShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(MaxAbsDiff(a, b), std::invalid_argument);
}

TEST(TensorTest, RandomTensorIsDeterministic) {
  Prng p1(5);
  Prng p2(5);
  const Tensor a = RandomTensor(Shape{100}, p1);
  const Tensor b = RandomTensor(Shape{100}, p2);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], -1.0f);
    EXPECT_LT(a[i], 1.0f);
  }
}

TEST(TensorTest, SizeBytes) {
  EXPECT_EQ(Tensor(Shape{10, 10}).SizeBytes(), 400u);
}

}  // namespace
}  // namespace milr
