// Multi-model serving: several MILR-protected CNNs behind one ServingHost.
//
// Real deployments co-host models: one machine, one worker pool, N models
// with independent protection domains. This example stands up a host with
// two models — a convolutional classifier and a dense scorer — serves
// traffic to both, corrupts each one in turn while the other keeps
// serving, and lets the single background scrubber heal them online. The
// per-model snapshots show downtime charged only to the model that was
// quarantined; the weight knob shows deficit-round-robin shaping the
// shared pool.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/multi_model_serving
#include <chrono>
#include <cstdio>
#include <thread>

#include "memory/fault_injector.h"
#include "nn/init.h"
#include "nn/model.h"
#include "runtime/serving_host.h"
#include "support/prng.h"

int main() {
  using namespace milr;
  using namespace std::chrono_literals;

  // 1. Two independent golden models.
  nn::Model vision(Shape{12, 12, 1});
  vision.AddConv(3, 8, nn::Padding::kValid).AddBias().AddReLU();
  vision.AddMaxPool(2);
  vision.AddFlatten();
  vision.AddDense(16).AddBias().AddReLU();
  vision.AddDense(4).AddBias();
  nn::InitHeUniform(vision, /*seed=*/1);

  nn::Model scorer(Shape{64});
  scorer.AddDense(48).AddBias().AddReLU();
  scorer.AddDense(48).AddBias().AddReLU();
  scorer.AddDense(8).AddBias();
  nn::InitHeUniform(scorer, /*seed=*/2);

  // 2. One host: shared worker pool, one scrubber sweeping both models.
  //    The scorer gets half the vision model's scheduler weight — under
  //    contention its backlog drains in half-sized grants.
  runtime::ServingHostConfig host_config;
  host_config.scrub_period = 10ms;
  runtime::ServingHost host(host_config);

  runtime::ModelRuntimeConfig vision_config;
  vision_config.weight = 1.0;
  auto vision_handle = host.AddModel(vision, vision_config, "vision");

  runtime::ModelRuntimeConfig scorer_config;
  scorer_config.weight = 0.5;
  auto scorer_handle = host.AddModel(scorer, scorer_config, "scorer");

  host.Start();
  std::printf("host: %zu workers, %zu models (vision w=1.0, scorer w=0.5)\n",
              host.worker_threads(), host.models().size());

  // 3. Serve clean traffic to both.
  Prng prng(99);
  const Tensor vision_probe = RandomTensor(vision.input_shape(), prng);
  const Tensor scorer_probe = RandomTensor(scorer.input_shape(), prng);
  const Tensor vision_clean = vision_handle->Predict(vision_probe);
  const Tensor scorer_clean = scorer_handle->Predict(scorer_probe);
  for (int i = 0; i < 200; ++i) {
    vision_handle->Predict(vision_probe);
    scorer_handle->Predict(scorer_probe);
  }
  std::printf("served %llu + %llu clean requests\n",
              static_cast<unsigned long long>(
                  vision_handle->Snapshot().requests_served),
              static_cast<unsigned long long>(
                  scorer_handle->Snapshot().requests_served));

  // 4. Corrupt each model in turn; the scrubber heals them online while
  //    the other model keeps serving from its own (untouched) lock domain.
  Prng attack(7);
  vision_handle->InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, /*layer_index=*/0, attack);
  });
  scorer_handle->InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, /*layer_index=*/0, attack);
  });
  std::printf("corrupted one whole layer in each model; scrubbing...\n");

  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while ((vision_handle->Snapshot().recoveries < 1 ||
          scorer_handle->Snapshot().recoveries < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    // Traffic keeps flowing during detection and quarantine.
    vision_handle->Predict(vision_probe);
    scorer_handle->Predict(scorer_probe);
    std::this_thread::sleep_for(1ms);
  }

  const float vision_dev =
      MaxAbsDiff(vision_handle->Predict(vision_probe), vision_clean);
  const float scorer_dev =
      MaxAbsDiff(scorer_handle->Predict(scorer_probe), scorer_clean);
  std::printf("after online recovery: vision deviation %.5f, scorer "
              "deviation %.5f\n",
              static_cast<double>(vision_dev),
              static_cast<double>(scorer_dev));

  // 5. Per-model accounting: downtime belongs to the quarantined model.
  for (const auto& handle : host.models()) {
    const auto snap = handle->Snapshot();
    std::printf("[%s] served=%llu recoveries=%llu downtime=%.4fs "
                "availability=%.6f\n",
                handle->name().c_str(),
                static_cast<unsigned long long>(snap.requests_served),
                static_cast<unsigned long long>(snap.recoveries),
                snap.downtime_seconds, snap.availability);
  }
  std::printf("aggregate json: %s\n",
              host.AggregateSnapshot().ToJson().c_str());

  host.Stop();
  return 0;
}
