// Multi-model serving: several MILR-protected CNNs behind one ServingHost.
//
// Real deployments co-host models: one machine, one worker pool, N models
// with independent protection domains. This example stands up a host with
// three models — a convolutional classifier (exact tier), a dense scorer
// (fast fp32 tier) and a dense ranker served from the int8 quantized tier
// — serves traffic to all, corrupts each in turn while the others keep
// serving, and lets the single background scrubber heal them online (the
// int8 model's quantized panels are rebuilt from the recovered fp32
// master automatically). The per-model snapshots show downtime charged
// only to the model that was quarantined; the weight knob shows
// deficit-round-robin shaping the shared pool.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/multi_model_serving
#include <chrono>
#include <cstdio>
#include <thread>

#include "memory/fault_injector.h"
#include "nn/init.h"
#include "nn/model.h"
#include "runtime/serving_host.h"
#include "support/prng.h"

int main() {
  using namespace milr;
  using namespace std::chrono_literals;

  // 1. Two independent golden models.
  nn::Model vision(Shape{12, 12, 1});
  vision.AddConv(3, 8, nn::Padding::kValid).AddBias().AddReLU();
  vision.AddMaxPool(2);
  vision.AddFlatten();
  vision.AddDense(16).AddBias().AddReLU();
  vision.AddDense(4).AddBias();
  nn::InitHeUniform(vision, /*seed=*/1);

  nn::Model scorer(Shape{64});
  scorer.AddDense(48).AddBias().AddReLU();
  scorer.AddDense(48).AddBias().AddReLU();
  scorer.AddDense(8).AddBias();
  nn::InitHeUniform(scorer, /*seed=*/2);

  nn::Model ranker(Shape{128});
  ranker.AddDense(96).AddBias().AddReLU();
  ranker.AddDense(96).AddBias().AddReLU();
  ranker.AddDense(16).AddBias();
  nn::InitHeUniform(ranker, /*seed=*/3);

  // 2. One host: shared worker pool, one scrubber sweeping every model.
  //    The scorer gets half the vision model's scheduler weight — under
  //    contention its backlog drains in half-sized grants. Each model
  //    picks its own kernel tier: the ranker serves from the int8
  //    quantized replica (the memory-bound pick), the scorer from the
  //    fast fp32 panels, the vision net from the bit-exact baseline.
  runtime::ServingHostConfig host_config;
  host_config.scrub_period = 10ms;
  runtime::ServingHost host(host_config);

  runtime::ModelRuntimeConfig vision_config;
  vision_config.weight = 1.0;
  auto vision_handle = host.AddModel(vision, vision_config, "vision");

  runtime::ModelRuntimeConfig scorer_config;
  scorer_config.weight = 0.5;
  scorer_config.kernel = nn::KernelConfig::kFast;
  auto scorer_handle = host.AddModel(scorer, scorer_config, "scorer");

  runtime::ModelRuntimeConfig ranker_config;
  ranker_config.kernel = nn::KernelConfig::kInt8;
  auto ranker_handle = host.AddModel(ranker, ranker_config, "ranker");

  host.Start();
  std::printf("host: %zu workers, %zu models (vision exact w=1.0, scorer "
              "fast w=0.5, ranker int8 w=1.0)\n",
              host.worker_threads(), host.models().size());

  // 3. Serve clean traffic to all three tiers.
  Prng prng(99);
  const Tensor vision_probe = RandomTensor(vision.input_shape(), prng);
  const Tensor scorer_probe = RandomTensor(scorer.input_shape(), prng);
  const Tensor ranker_probe = RandomTensor(ranker.input_shape(), prng);
  const Tensor vision_clean = vision_handle->Predict(vision_probe);
  const Tensor scorer_clean = scorer_handle->Predict(scorer_probe);
  const Tensor ranker_clean = ranker_handle->Predict(ranker_probe);
  for (int i = 0; i < 200; ++i) {
    vision_handle->Predict(vision_probe);
    scorer_handle->Predict(scorer_probe);
    ranker_handle->Predict(ranker_probe);
  }
  std::printf("served %llu + %llu + %llu clean requests\n",
              static_cast<unsigned long long>(
                  vision_handle->Snapshot().requests_served),
              static_cast<unsigned long long>(
                  scorer_handle->Snapshot().requests_served),
              static_cast<unsigned long long>(
                  ranker_handle->Snapshot().requests_served));

  // 4. Corrupt each model in turn; the scrubber heals them online while
  //    the others keep serving from their own (untouched) lock domains.
  //    For the int8 ranker the recovery also invalidates its quantized
  //    panels — the next serve requantizes from the repaired fp32 master.
  Prng attack(7);
  vision_handle->InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, /*layer_index=*/0, attack);
  });
  scorer_handle->InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, /*layer_index=*/0, attack);
  });
  ranker_handle->InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, /*layer_index=*/0, attack);
  });
  std::printf("corrupted one whole layer in each model; scrubbing...\n");

  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while ((vision_handle->Snapshot().recoveries < 1 ||
          scorer_handle->Snapshot().recoveries < 1 ||
          ranker_handle->Snapshot().recoveries < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    // Traffic keeps flowing during detection and quarantine.
    vision_handle->Predict(vision_probe);
    scorer_handle->Predict(scorer_probe);
    ranker_handle->Predict(ranker_probe);
    std::this_thread::sleep_for(1ms);
  }

  const float vision_dev =
      MaxAbsDiff(vision_handle->Predict(vision_probe), vision_clean);
  const float scorer_dev =
      MaxAbsDiff(scorer_handle->Predict(scorer_probe), scorer_clean);
  const float ranker_dev =
      MaxAbsDiff(ranker_handle->Predict(ranker_probe), ranker_clean);
  std::printf("after online recovery: vision deviation %.5f, scorer "
              "deviation %.5f, ranker (int8) deviation %.5f\n",
              static_cast<double>(vision_dev),
              static_cast<double>(scorer_dev),
              static_cast<double>(ranker_dev));

  // 5. Per-model accounting: downtime belongs to the quarantined model.
  for (const auto& handle : host.models()) {
    const auto snap = handle->Snapshot();
    std::printf("[%s] served=%llu recoveries=%llu downtime=%.4fs "
                "availability=%.6f\n",
                handle->name().c_str(),
                static_cast<unsigned long long>(snap.requests_served),
                static_cast<unsigned long long>(snap.recoveries),
                snap.downtime_seconds, snap.availability);
  }
  std::printf("aggregate json: %s\n",
              host.AggregateSnapshot().ToJson().c_str());

  host.Stop();
  return 0;
}
