// Self-healing from a targeted bit-flip attack (the paper's security use
// case, cf. Rakin et al.'s Bit-Flip Attack): an attacker who can write the
// weight memory flips the most damaging bits — sign and high exponent — of
// the largest-magnitude weights. A handful of flips collapses accuracy;
// MILR detects the modified layers and restores them.
//
// Uses the trained MNIST evaluation network (trains on first run, cached).
//
//   ./build/examples/bitflip_attack
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/networks.h"
#include "milr/protector.h"
#include "nn/train.h"
#include "support/bytes.h"

int main() {
  using namespace milr;

  auto bundle = apps::LoadOrTrain(apps::kMnist);
  nn::Model& model = *bundle.model;
  std::printf("clean test accuracy: %.1f%%\n", 100.0 * bundle.clean_accuracy);

  core::MilrProtector protector(model);

  // Attack: in each dense layer, take the largest-magnitude weights and
  // flip their sign bit plus a high exponent bit (bit 30) — the flips the
  // robustness literature identifies as most damaging.
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    if (model.layer(i).kind() != nn::LayerKind::kDense) continue;
    auto params = model.layer(i).Params();
    std::vector<std::size_t> order(params.size());
    for (std::size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::partial_sort(order.begin(), order.begin() + 8, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return std::abs(params[a]) > std::abs(params[b]);
                      });
    for (std::size_t k = 0; k < 8; ++k) {
      params[order[k]] = FlipFloatBit(FlipFloatBit(params[order[k]], 31), 30);
      ++flipped;
    }
  }
  const double attacked = nn::Evaluate(model, bundle.test);
  std::printf("after %zu targeted bit-flips: accuracy %.1f%%\n", flipped,
              100.0 * attacked);

  // Self-heal.
  const auto detection = protector.Detect();
  std::printf("MILR flagged:");
  for (const auto index : detection.flagged_layers) {
    std::printf(" %s", model.layer(index).name().c_str());
  }
  std::printf("\n");
  const auto recovery = protector.Recover(detection);
  for (const auto& layer : recovery.layers) {
    std::printf("  %s: %s (%zu weights rewritten)\n",
                model.layer(layer.layer_index).name().c_str(),
                layer.status.ok() ? "recovered" : layer.status.ToString().c_str(),
                layer.weights_written);
  }
  const double healed = nn::Evaluate(model, bundle.test);
  std::printf("after self-healing: accuracy %.1f%%\n", 100.0 * healed);
  return 0;
}
