// Plaintext-space error correction (PSEC) — the paper's core scenario.
//
// CNN weights live in an encrypted VM's memory (AES-XTS, as in AMD SEV /
// Intel MKTME). One flipped *ciphertext* bit decrypts into a fully random
// 16-byte plaintext block — four consecutive float32 weights destroyed at
// once. Word-level SECDED, attached to the plaintext, sees ~16 bit errors
// per word and is helpless; MILR recomputes the weights from layer algebra.
//
//   ./build/examples/encrypted_vm_attack
#include <cstdio>

#include "memory/ecc_memory.h"
#include "memory/encrypted_memory.h"
#include "milr/protector.h"
#include "nn/init.h"
#include "nn/model.h"
#include "support/bytes.h"
#include "support/prng.h"

int main() {
  using namespace milr;

  nn::Model model(Shape{16, 16, 1});
  model.AddConv(3, 16, nn::Padding::kValid).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddFlatten();
  model.AddDense(32).AddBias().AddReLU();
  model.AddDense(4).AddBias();
  nn::InitHeUniform(model, 3);
  const auto golden = model.SnapshotParams();

  // Protect with MILR *and* plaintext-space SECDED, then move the weights
  // into encrypted memory.
  core::MilrProtector protector(model);
  memory::EccProtectedModel plaintext_ecc(model);
  memory::EncryptedParamSpace encrypted(model, /*key_seed=*/0xfeed);

  // The attacker (or a cosmic ray) flips a handful of ciphertext bits.
  Prng attack(99);
  const std::size_t flips = 3;
  std::printf("flipping %zu ciphertext bits...\n", flips);
  for (std::size_t i = 0; i < flips; ++i) {
    encrypted.FlipCiphertextBit(attack.NextBelow(encrypted.CiphertextBits()));
  }
  encrypted.DecryptInto(model);

  // Damage assessment in the plaintext space.
  std::size_t damaged_weights = 0;
  int damaged_bits = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      const int distance = FloatBitDistance(params[p], golden[i][p]);
      if (distance > 0) {
        ++damaged_weights;
        damaged_bits += distance;
      }
    }
  }
  std::printf("plaintext damage: %zu weights corrupted, %d bits flipped "
              "(%.1f bits/weight — far beyond SECDED)\n",
              damaged_weights, damaged_bits,
              static_cast<double>(damaged_bits) /
                  static_cast<double>(damaged_weights));

  // Plaintext-space ECC tries and fails.
  const auto scrub = plaintext_ecc.Scrub();
  std::size_t still_damaged = 0;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      if (FloatBits(params[p]) != FloatBits(golden[i][p])) ++still_damaged;
    }
  }
  std::printf("SECDED scrub: corrected=%zu detected-uncorrectable=%zu -> "
              "%zu weights still wrong\n",
              scrub.corrected, scrub.detected_uncorrectable, still_damaged);

  // MILR detects the affected layers and self-heals.
  const auto detection = protector.Detect();
  std::printf("MILR flagged %zu layers\n", detection.flagged_layers.size());
  protector.Recover(detection);

  float max_err = 0.0f;
  for (std::size_t i = 0; i < model.LayerCount(); ++i) {
    auto params = model.layer(i).Params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      max_err = std::max(max_err, std::abs(params[p] - golden[i][p]));
    }
  }
  std::printf("MILR recovery: max weight error vs golden = %.2e\n", max_err);
  return 0;
}
