// Mission planning with the availability/accuracy trade-off (Section V-E).
//
// Given a deployment's DRAM failure rate and a network's measured detection
// and recovery costs, equation 6 tells you how often to run MILR's
// detection phase: frequent repair keeps worst-case accuracy high but burns
// availability, and vice versa. This example plans both of the paper's
// users: A needs ≥99.999% accuracy (e.g. a safety function), B needs
// ≥99.9% availability (e.g. a recommender).
//
//   ./build/examples/availability_planner
#include <cstdio>

#include "milr/availability.h"

int main() {
  using namespace milr::core;

  // Inputs a deployment engineer would measure or look up. These defaults
  // mirror the paper's assumptions: 75,000 FIT/Mbit field error rate, a
  // ~1.7M-parameter network, detection costing about one inference, and a
  // recovery-time model fitted from Fig. 11-style measurements.
  const std::size_t param_count = 1670000;
  AvailabilityParams params;
  params.detection_seconds = 0.02;
  params.detections_per_cycle = 2.0;
  params.time_between_errors_s = 3600.0 / ErrorsPerHour(param_count);
  params.recovery.base_seconds = 0.5;
  params.recovery.per_error_seconds = 2e-3;
  params.recovery.per_error_sq_seconds = 1e-7;
  params.accuracy_loss_per_error = 1e-5;

  std::printf("network: %zu parameters -> mean time between errors %.0f h\n",
              param_count, params.time_between_errors_s / 3600.0);

  std::printf("\nrepair-cycle sweep (eq. 6):\n");
  std::printf("  %-14s %-14s %-12s\n", "cycle", "availability",
              "min accuracy");
  for (const auto& point :
       AvailabilityAccuracyCurve(params, 60.0, 3.15e7, 10)) {
    std::printf("  %12.0fs   %.8f   %.6f\n", point.cycle_seconds,
                point.availability, point.min_accuracy);
  }

  const double user_a =
      BestAvailabilityAtAccuracy(params, 0.99999, 60.0, 3.15e7);
  const double user_b =
      BestAccuracyAtAvailability(params, 0.999, 60.0, 3.15e7);
  std::printf("\nuser A (min accuracy 99.999%%): best availability %.8f\n",
              user_a);
  std::printf("user B (availability 99.9%%):   best min accuracy %.6f\n",
              user_b);
  return 0;
}
