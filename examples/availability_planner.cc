// Mission planning with the availability/accuracy trade-off (Section V-E) —
// now driven by the real protected runtime instead of hand-entered numbers.
//
// The seed version of this example planned from constants a deployment
// engineer would "measure or look up". With src/runtime the measurement is
// part of the program: it stands up a live InferenceEngine, measures the
// detection cost Td and the recovery-time curve Tr(n) on that engine
// (quarantine included, i.e. what serving actually loses), demonstrates one
// online fault→detect→recover round under traffic, and then plans both of
// the paper's users with equation 6: A needs ≥99.999% accuracy (a safety
// function), B needs ≥99.9% availability (a recommender).
//
//   ./build/examples/availability_planner
#include <chrono>
#include <cstdio>

#include "apps/experiment.h"
#include "milr/availability.h"
#include "nn/init.h"
#include "nn/model.h"
#include "runtime/engine.h"
#include "runtime/fault_drive.h"
#include "support/prng.h"

int main() {
  using namespace milr;

  // A demonstrator CNN. Its *measured* Td/Tr feed the planner; the
  // deployment-scale error rate below is what sets Tbe.
  nn::Model model(Shape{12, 12, 1});
  model.AddConv(3, 8, nn::Padding::kValid).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddFlatten();
  model.AddDense(16).AddBias().AddReLU();
  model.AddDense(4).AddBias();
  nn::InitHeUniform(model, /*seed=*/1);
  const auto golden = model.SnapshotParams();

  runtime::EngineConfig config;
  // Detection/recovery run via explicit ScrubNow() below; a background
  // sweep would race the timed measurement cycles.
  config.scrubber_enabled = false;
  runtime::InferenceEngine engine(model, config);
  engine.Start();
  std::printf("live engine: %zu layers, %zu parameters, %zu workers\n",
              model.LayerCount(), model.TotalParams(),
              engine.config().worker_threads);

  // ---- Measure Td on the live engine (clean cycle = pure detection).
  const double td = engine.ScrubNow().detect_seconds;

  // ---- Measure Tr(n): inject n exact weight errors, time the quarantined
  //      repair the scrubber performs, restore golden between points.
  const auto tr = apps::MeasureRecoveryCurve(engine, golden, {8, 64, 256},
                                             /*seed=*/0xbeef);
  std::printf("measured on this engine: Td=%.5fs  Tr(n)=%.4f+%.2en+%.2en²\n",
              td, tr.base_seconds, tr.per_error_seconds,
              tr.per_error_sq_seconds);

  // ---- One live round: serve traffic, then a whole-layer overwrite under
  //      the scrubber's watch, then serve again from the healed model.
  Prng traffic_prng(42);
  const Tensor probe = RandomTensor(model.input_shape(), traffic_prng);
  for (int i = 0; i < 50; ++i) engine.Predict(probe);

  runtime::FaultCampaign campaign;
  campaign.kind = runtime::FaultCampaign::Kind::kWholeLayer;
  campaign.max_events = 1;
  campaign.period = std::chrono::milliseconds(1);
  campaign.seed = 7;
  runtime::FaultDrive drive(engine, campaign);
  drive.FireOnce();
  for (int cycle = 0; cycle < 5 && engine.Snapshot().recoveries < 1;
       ++cycle) {
    engine.ScrubNow();
  }
  for (int i = 0; i < 50; ++i) engine.Predict(probe);  // healed traffic
  const auto metrics = engine.Snapshot();
  std::printf("\nonline self-healing round (cumulative metrics):\n%s\n",
              metrics.ToJson().c_str());
  engine.Stop();

  // ---- Plan a deployment with eq. 6. The fault domain is the deployment
  //      network (paper scale, ~1.7M parameters); Td/Tr are the measured
  //      engine costs above.
  const std::size_t deployed_params = 1670000;
  core::AvailabilityParams params;
  params.detection_seconds = td;
  params.detections_per_cycle = 2.0;
  params.time_between_errors_s = 3600.0 / core::ErrorsPerHour(deployed_params);
  params.recovery = tr;
  params.accuracy_loss_per_error = 1e-5;

  std::printf("\ndeployment: %zu parameters -> mean time between errors "
              "%.0f h\n",
              deployed_params, params.time_between_errors_s / 3600.0);

  std::printf("\nrepair-cycle sweep (eq. 6):\n");
  std::printf("  %-14s %-14s %-12s\n", "cycle", "availability",
              "min accuracy");
  for (const auto& point :
       core::AvailabilityAccuracyCurve(params, 60.0, 3.15e7, 10)) {
    std::printf("  %12.0fs   %.8f   %.6f\n", point.cycle_seconds,
                point.availability, point.min_accuracy);
  }

  const double user_a =
      core::BestAvailabilityAtAccuracy(params, 0.99999, 60.0, 3.15e7);
  const double user_b =
      core::BestAccuracyAtAvailability(params, 0.999, 60.0, 3.15e7);
  std::printf("\nuser A (min accuracy 99.999%%): best availability %.8f\n",
              user_a);
  std::printf("user B (availability 99.9%%):   best min accuracy %.6f\n",
              user_b);
  return 0;
}
