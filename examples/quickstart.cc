// Quickstart: protect a small CNN with MILR, corrupt it, watch it self-heal.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "memory/fault_injector.h"
#include "milr/protector.h"
#include "nn/init.h"
#include "nn/model.h"
#include "support/bytes.h"
#include "support/prng.h"

int main() {
  using namespace milr;

  // 1. Build a small CNN (conv -> bias -> relu -> pool -> dense head).
  nn::Model model(Shape{12, 12, 1});
  model.AddConv(3, 8, nn::Padding::kValid).AddBias().AddReLU();
  model.AddMaxPool(2);
  model.AddFlatten();
  model.AddDense(16).AddBias().AddReLU();
  model.AddDense(4).AddBias();
  nn::InitHeUniform(model, /*seed=*/1);
  std::printf("network: %zu layers, %zu parameters\n", model.LayerCount(),
              model.TotalParams());

  // Remember what the clean network predicts on a probe input.
  Prng probe_prng(99);
  const Tensor probe = RandomTensor(model.input_shape(), probe_prng);
  const Tensor clean_output = model.Predict(probe);

  // 2. Protect it. Initialization plans checkpoints, partial checkpoints,
  //    dummy streams and CRC tables (see the printed plan).
  core::MilrProtector protector(model);
  std::printf("\nprotection plan:\n%s",
              core::PlanToString(model, protector.plan()).c_str());
  const auto storage = protector.Storage();
  std::printf("reliable storage: %zu bytes (network itself: %zu bytes)\n\n",
              storage.total(), model.TotalParamBytes());

  // 3. Corrupt the big dense layer the hard way: whole weights with every
  //    bit flipped — the plaintext-space error class ECC cannot touch.
  //    (MILR recovers any number of errors in one layer per checkpoint
  //    segment; see milr_integration_test for the multi-segment limits.)
  Prng attack_prng(7);
  auto dense_params = model.layer(5).Params();
  std::size_t corrupted = 0;
  for (std::size_t w = 0; w < dense_params.size(); w += 2) {
    dense_params[w] = FloatFromBits(FloatBits(dense_params[w]) ^ 0xffffffffu);
    ++corrupted;
  }
  std::printf("flipped every bit of %zu weights in %s\n", corrupted,
              model.layer(5).name().c_str());
  const Tensor corrupted_output = model.Predict(probe);
  std::printf("max output deviation while corrupted: %.3f\n",
              MaxAbsDiff(clean_output, corrupted_output));

  // 4. Detect and self-heal.
  const auto detection = protector.Detect();
  std::printf("detection flagged %zu layers:", detection.flagged_layers.size());
  for (const auto index : detection.flagged_layers) {
    std::printf(" %s", model.layer(index).name().c_str());
  }
  std::printf("\n");

  const auto recovery = protector.Recover(detection);
  for (const auto& layer : recovery.layers) {
    std::printf("  recovered %-10s mode=%-12s wrote %zu weights (%s)\n",
                model.layer(layer.layer_index).name().c_str(),
                core::SolveModeName(layer.mode), layer.weights_written,
                layer.status.ok() ? "ok" : layer.status.ToString().c_str());
  }

  const Tensor healed_output = model.Predict(probe);
  std::printf("max output deviation after self-healing: %.2e\n",
              MaxAbsDiff(clean_output, healed_output));
  return 0;
}
