// Observability: the flight recorder and the telemetry exposition on a
// live two-model host.
//
// What you get from src/obs/ while serving protected models:
//  * The flight-recorder tracer — per-thread lock-free rings recording the
//    full request lifecycle (enqueue -> scheduler grant -> micro-batch ->
//    per-layer kernels -> done) plus scrub cycles and fault injections,
//    exported as Chrome trace JSON for chrome://tracing / ui.perfetto.dev.
//  * The Prometheus-style text exposition — every per-model counter and
//    gauge from MetricsSnapshot plus per-layer service-time aggregates
//    from the layer profiler, rendered periodically by a
//    TelemetryReporter (here to stdout; in production to a file a
//    node-exporter-style scraper reads).
//
// The example corrupts one model mid-run so the trace shows a
// fault_inject instant followed by scrub detect/quarantine spans — the
// "when did the quarantine start relative to the latency spike?" question
// the recorder exists to answer.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/observability [trace_out.json]
#include <chrono>
#include <cstdio>
#include <thread>

#include "memory/fault_injector.h"
#include "nn/init.h"
#include "nn/model.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "runtime/serving_host.h"
#include "support/prng.h"

int main(int argc, char** argv) {
  using namespace milr;
  using namespace std::chrono_literals;
  const char* trace_path = argc > 1 ? argv[1] : "observability_trace.json";

  // 1. Recording on BEFORE the host exists: model runtimes register their
  //    trace tracks at construction, worker/scrubber threads register
  //    rings lazily at first emit. 16k events per thread, most-recent-N.
  obs::Tracer::Get().Enable(1u << 14);

  nn::Model vision(Shape{12, 12, 1});
  vision.AddConv(3, 8, nn::Padding::kValid).AddBias().AddReLU();
  vision.AddMaxPool(2);
  vision.AddFlatten();
  vision.AddDense(16).AddBias().AddReLU();
  vision.AddDense(4).AddBias();
  nn::InitHeUniform(vision, /*seed=*/1);

  nn::Model scorer(Shape{64});
  scorer.AddDense(48).AddBias().AddReLU();
  scorer.AddDense(8).AddBias();
  nn::InitHeUniform(scorer, /*seed=*/2);

  runtime::ServingHostConfig host_config;
  host_config.scrub_period = 10ms;
  runtime::ServingHost host(host_config);
  auto vision_handle = host.AddModel(vision, {}, "vision");
  auto scorer_handle = host.AddModel(scorer, {}, "scorer");
  host.Start();

  // 2. A periodic reporter rendering the host's full exposition. The
  //    stdout sink is for demonstration — give it a path instead and the
  //    file is rewritten atomically (tmp+rename) every period.
  obs::TelemetryReporterConfig reporter_config;
  reporter_config.period = 400ms;
  obs::TelemetryReporter reporter(
      [&host] { return host.ExpositionText(); },
      [](const std::string& text) {
        std::printf("---- exposition ----\n%s", text.c_str());
      },
      reporter_config);
  reporter.Start();

  // 3. Traffic on both models, a fault on one. The scrubber's
  //    detect/quarantine spans and the fault_inject instant land on the
  //    vision model's track in the trace.
  Prng prng(99);
  const Tensor vision_probe = RandomTensor(vision.input_shape(), prng);
  const Tensor scorer_probe = RandomTensor(scorer.input_shape(), prng);
  for (int i = 0; i < 150; ++i) {
    vision_handle->Predict(vision_probe);
    scorer_handle->Predict(scorer_probe);
  }
  Prng attack(7);
  vision_handle->InjectFault([&](nn::Model& live) {
    return memory::CorruptWholeLayer(live, /*layer_index=*/0, attack);
  });
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (vision_handle->Snapshot().recoveries < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    vision_handle->Predict(vision_probe);
    scorer_handle->Predict(scorer_probe);
    std::this_thread::sleep_for(1ms);
  }

  reporter.Stop();  // flushes one final exposition
  host.Stop();

  // 4. Export. Disable() keeps the recording; the dump is also safe while
  //    emitters are still running (recording pauses, copies, resumes).
  obs::Tracer::Get().Disable();
  const auto stats = obs::Tracer::Get().GetStats();
  std::printf("trace: %llu events held (%llu emitted, %llu wrapped) "
              "across %zu threads\n",
              static_cast<unsigned long long>(stats.recorded),
              static_cast<unsigned long long>(stats.emitted),
              static_cast<unsigned long long>(stats.dropped),
              stats.threads);
  if (obs::Tracer::Get().WriteChromeTrace(trace_path)) {
    std::printf("wrote %s -- open chrome://tracing or ui.perfetto.dev and "
                "load it; rows are threads, args carry batch sizes, layer "
                "indices and scrub outcomes\n",
                trace_path);
  }
  return 0;
}
